"""Append-only run-history store with trend rendering and anomaly gating.

Every bench/fuzz/compile invocation can record its headline metrics
(geomean speedups, total cycles, cache hit rates, parallel overhead,
phase-time percentiles) into a stdlib :mod:`sqlite3` database keyed by
git revision and a hash of the run configuration.  Across commits this
gives the repo what a single BENCH snapshot cannot: a *trajectory*.

``repro history`` renders per-metric trend tables with ASCII sparklines;
``repro history --check`` applies robust anomaly detection to the latest
sample of each series and exits nonzero on regressions, making the DB a
CI gate rather than a write-only log.

Anomaly detection is median/MAD based (the robust z-score
``0.6745 * |x - median| / MAD``), which tolerates the odd historical
outlier that would wreck a mean/stddev gate.  Simulated-cycle series are
*deterministic* — repeated runs of the same code produce identical
values, so MAD is frequently exactly zero; in that case the check falls
back to a relative-deviation threshold (default 5%), which is what lets
a synthetic 20% cycle regression trip the gate against a flat history.

Direction matters: ``*.cycles`` or ``*_seconds`` going *down* is an
improvement, ``*speedup*`` or ``*rate*`` going down is a regression.
:func:`metric_direction` infers this from the metric name.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

SCHEMA_VERSION = 1

#: default robust z-score threshold (|0.6745 * dev / MAD|); 3.5 is the
#: classic Iglewicz-Hoaglin cutoff for modified z-scores
DEFAULT_THRESHOLD = 3.5

#: relative-deviation fallback when MAD == 0 (deterministic series)
DEFAULT_REL_FLOOR = 0.05

#: minimum number of *historical* samples (excluding the latest) before
#: a series is eligible for anomaly checking
MIN_HISTORY = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    created_at REAL NOT NULL,
    kind TEXT NOT NULL,
    git_rev TEXT NOT NULL,
    config_hash TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS samples (
    run_id INTEGER NOT NULL REFERENCES runs(id),
    name TEXT NOT NULL,
    value REAL NOT NULL,
    PRIMARY KEY (run_id, name)
);
CREATE INDEX IF NOT EXISTS samples_by_name ON samples(name, run_id);
"""


def git_revision(cwd: Optional[str] = None) -> str:
    """The short git revision of ``cwd`` (or the process cwd); a stable
    ``"unknown"`` outside a work tree so recording never fails."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else "unknown"


def config_hash(config: object) -> str:
    """A short stable hash over a JSON-serializable run configuration."""
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


@dataclass
class RunRecord:
    """One recorded run: identity plus its flat metric samples."""

    id: int
    created_at: float
    kind: str
    git_rev: str
    config_hash: str
    metrics: Dict[str, float] = field(default_factory=dict)
    payload: Dict[str, object] = field(default_factory=dict)


class RunHistory:
    """The append-only sqlite-backed run store.

    Usable as a context manager; ``record()`` commits immediately, so a
    crash after recording loses nothing.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
            ("schema_version", str(SCHEMA_VERSION)),
        )
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunHistory":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writing -----------------------------------------------------------

    def record(
        self,
        kind: str,
        metrics: Dict[str, float],
        payload: Optional[Dict[str, object]] = None,
        git_rev: Optional[str] = None,
        config: object = None,
        created_at: Optional[float] = None,
    ) -> int:
        """Append one run; returns its row id.

        Non-finite and non-numeric metric values are dropped rather than
        poisoning later statistics.
        """
        rev = git_rev if git_rev is not None else git_revision()
        cursor = self._conn.execute(
            "INSERT INTO runs (created_at, kind, git_rev, config_hash, payload)"
            " VALUES (?, ?, ?, ?, ?)",
            (
                created_at if created_at is not None else time.time(),
                kind,
                rev,
                config_hash(config) if config is not None else "",
                json.dumps(payload or {}, sort_keys=True, default=str),
            ),
        )
        run_id = cursor.lastrowid
        rows = []
        for name, value in metrics.items():
            try:
                number = float(value)
            except (TypeError, ValueError):
                continue
            if number != number or number in (float("inf"), float("-inf")):
                continue
            rows.append((run_id, name, number))
        self._conn.executemany(
            "INSERT OR REPLACE INTO samples (run_id, name, value) VALUES (?, ?, ?)",
            rows,
        )
        self._conn.commit()
        return int(run_id)

    # -- reading -----------------------------------------------------------

    def runs(self, kind: Optional[str] = None, limit: int = 0) -> List[RunRecord]:
        """Recorded runs in id (append) order, optionally the last
        ``limit`` of one ``kind``."""
        query = "SELECT id, created_at, kind, git_rev, config_hash, payload FROM runs"
        params: Tuple[object, ...] = ()
        if kind is not None:
            query += " WHERE kind = ?"
            params = (kind,)
        query += " ORDER BY id DESC"
        if limit:
            query += f" LIMIT {int(limit)}"
        rows = list(self._conn.execute(query, params))[::-1]
        records = []
        for row in rows:
            record = RunRecord(
                id=row[0], created_at=row[1], kind=row[2],
                git_rev=row[3], config_hash=row[4],
                payload=json.loads(row[5]),
            )
            for name, value in self._conn.execute(
                "SELECT name, value FROM samples WHERE run_id = ? ORDER BY name",
                (record.id,),
            ):
                record.metrics[name] = value
            records.append(record)
        return records

    def series(
        self, name: str, kind: Optional[str] = None, limit: int = 0
    ) -> List[Tuple[int, float]]:
        """``(run_id, value)`` pairs for metric ``name`` in append order."""
        query = (
            "SELECT samples.run_id, samples.value FROM samples"
            " JOIN runs ON runs.id = samples.run_id WHERE samples.name = ?"
        )
        params: List[object] = [name]
        if kind is not None:
            query += " AND runs.kind = ?"
            params.append(kind)
        query += " ORDER BY samples.run_id DESC"
        if limit:
            query += f" LIMIT {int(limit)}"
        return list(self._conn.execute(query, params))[::-1]

    def metric_names(self, kind: Optional[str] = None) -> List[str]:
        query = (
            "SELECT DISTINCT samples.name FROM samples"
            " JOIN runs ON runs.id = samples.run_id"
        )
        params: Tuple[object, ...] = ()
        if kind is not None:
            query += " WHERE runs.kind = ?"
            params = (kind,)
        return sorted(row[0] for row in self._conn.execute(query, params))


# -- anomaly detection --------------------------------------------------------------


def _median(values: Sequence[float]) -> float:
    data = sorted(values)
    mid = len(data) // 2
    if len(data) % 2:
        return data[mid]
    return (data[mid - 1] + data[mid]) / 2.0


def _mad(values: Sequence[float], center: float) -> float:
    return _median([abs(value - center) for value in values])


#: name fragments implying "lower is better" / "higher is better"
_LOWER_BETTER = (
    "cycles", "seconds", "_ns", ".ns", "overhead", "misses", "failures",
    "crashes", "mismatches",
)
_HIGHER_BETTER = ("speedup", "rate", "per_sec", "hits", "throughput", "ips")


def metric_direction(name: str) -> str:
    """``"lower"`` / ``"higher"`` (= better) or ``"any"`` when unknown.

    Unknown metrics are still checked, in both directions — a large jump
    either way is worth flagging even without a goodness direction.
    """
    lowered = name.lower()
    for fragment in _HIGHER_BETTER:
        if fragment in lowered:
            return "higher"
    for fragment in _LOWER_BETTER:
        if fragment in lowered:
            return "lower"
    return "any"


@dataclass
class Anomaly:
    """One flagged series: the latest sample deviates regressively."""

    metric: str
    latest: float
    median: float
    mad: float
    score: float
    detail: str

    def __str__(self) -> str:
        return f"{self.metric}: {self.detail}"


def check_series(
    name: str,
    values: Sequence[float],
    threshold: float = DEFAULT_THRESHOLD,
    rel_floor: float = DEFAULT_REL_FLOOR,
    min_history: int = MIN_HISTORY,
) -> Optional[Anomaly]:
    """Flag the *latest* value of ``values`` against the rest.

    Returns None when the series is too short, the deviation points in
    the improving direction, or the deviation is within tolerance.
    """
    if len(values) < min_history + 1:
        return None
    history, latest = list(values[:-1]), float(values[-1])
    center = _median(history)
    spread = _mad(history, center)
    deviation = latest - center
    direction = metric_direction(name)
    if direction == "lower" and deviation <= 0:
        return None  # got faster/smaller: an improvement
    if direction == "higher" and deviation >= 0:
        return None  # got better: an improvement
    if spread > 0:
        score = 0.6745 * abs(deviation) / spread
        if score <= threshold:
            return None
        detail = (
            f"latest {latest:g} vs median {center:g} "
            f"(robust z={score:.1f} > {threshold:g})"
        )
    else:
        if center == 0:
            if deviation == 0:
                return None
            score = float("inf")
        else:
            score = abs(deviation) / abs(center)
            if score <= rel_floor:
                return None
        detail = (
            f"latest {latest:g} vs flat history at {center:g} "
            f"({100 * abs(deviation) / abs(center) if center else 0:.1f}% "
            f"> {100 * rel_floor:g}% tolerance)"
        )
    return Anomaly(
        metric=name, latest=latest, median=center,
        mad=spread, score=score, detail=detail,
    )


def check_history(
    history: RunHistory,
    kind: Optional[str] = None,
    metrics: Optional[Sequence[str]] = None,
    limit: int = 50,
    threshold: float = DEFAULT_THRESHOLD,
    rel_floor: float = DEFAULT_REL_FLOOR,
) -> List[Anomaly]:
    """Run :func:`check_series` over every (selected) metric; anomalies
    in metric-name order."""
    names = list(metrics) if metrics else history.metric_names(kind)
    anomalies = []
    for name in names:
        values = [value for _, value in history.series(name, kind, limit)]
        anomaly = check_series(name, values, threshold, rel_floor)
        if anomaly is not None:
            anomalies.append(anomaly)
    return anomalies


# -- rendering ----------------------------------------------------------------------

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """An ASCII(-art) sparkline of ``values`` (empty string when empty)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_BLOCKS[3] * len(values)
    span = hi - lo
    return "".join(
        _SPARK_BLOCKS[min(7, int((value - lo) / span * 8))] for value in values
    )


def render_trend_table(
    history: RunHistory,
    kind: Optional[str] = None,
    metrics: Optional[Sequence[str]] = None,
    limit: int = 20,
) -> str:
    """The ``repro history`` trend table: one row per metric with its
    sparkline, sample count, median, latest and relative delta."""
    names = list(metrics) if metrics else history.metric_names(kind)
    if not names:
        return "(no recorded runs)"
    rows: List[Tuple[str, str, str, str, str, str]] = []
    for name in names:
        values = [value for _, value in history.series(name, kind, limit)]
        if not values:
            continue
        center = _median(values[:-1]) if len(values) > 1 else values[-1]
        latest = values[-1]
        delta = (
            f"{100 * (latest - center) / abs(center):+.1f}%" if center else "n/a"
        )
        rows.append(
            (
                name,
                str(len(values)),
                sparkline(values),
                f"{center:g}",
                f"{latest:g}",
                delta,
            )
        )
    headers = ("metric", "n", "trend", "median", "latest", "delta")
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows)) if rows else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(headers[col].ljust(widths[col]) for col in range(len(headers))),
        "  ".join("-" * widths[col] for col in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(row[col].ljust(widths[col]) for col in range(len(headers))))
    return "\n".join(lines)
