"""Self-time attribution and flamegraph export over recorded trace spans.

The tracer (:mod:`repro.observe.trace`) records *cumulative* span times:
a ``compile`` span covers all of its phases.  Diagnosing where time
actually goes needs **self time** — a span's duration minus the spans
nested inside it.  This module reconstructs the span tree from a flat
:class:`~repro.observe.trace.TraceEvent` list (events arrive in
completion order; nesting is recovered from intervals plus recorded
depth) and derives:

* per-name self/cumulative aggregates and a top-N hot-phase table
  (``repro profile``);
* collapsed-stack ("folded") output — ``root;child;leaf <count>`` lines,
  one per unique stack, weighted by self time in microseconds — the
  input format of Brendan Gregg's ``flamegraph.pl`` and of speedscope.

Events merged in from parallel workers keep their worker ``pid`` and
pool ``generation``; each worker's spans form their own forest, rooted
under a ``pid<N>`` frame (``pid<N>.g<G>`` for respawned generations) in
the folded output so per-worker time stays attributable even when the
OS reuses a pid across respawns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .trace import TraceEvent


@dataclass
class ProfileNode:
    """One span in the reconstructed call tree."""

    event: TraceEvent
    children: List["ProfileNode"] = field(default_factory=list)

    @property
    def self_ns(self) -> int:
        """Duration not covered by child spans (clamped at zero — child
        clock reads can overshoot the parent's by a few ns)."""
        nested = sum(child.event.duration_ns for child in self.children)
        return max(0, self.event.duration_ns - nested)


def _encloses(parent: TraceEvent, child: TraceEvent) -> bool:
    """Strict nesting test: interval containment plus greater depth.

    The depth comparison disambiguates zero-duration spans with equal
    intervals (``contains`` alone is symmetric for those).
    """
    return parent.contains(child) and child.depth > parent.depth


def build_trees(events: Sequence[TraceEvent]) -> List[ProfileNode]:
    """Reconstruct span forests from a flat completed-event list.

    Events are grouped by worker ``(pid, generation)`` (spans merged
    from different processes share a timebase only within their process,
    and the OS reuses pids across service worker generations), then
    nested with a stack sweep in (start, depth) order.
    """
    by_track: Dict[tuple, List[TraceEvent]] = {}
    for event in events:
        by_track.setdefault((event.pid, event.generation), []).append(event)
    roots: List[ProfileNode] = []
    for track in sorted(by_track):
        ordered = sorted(
            by_track[track], key=lambda e: (e.start_ns, e.depth, -e.duration_ns)
        )
        stack: List[ProfileNode] = []
        for event in ordered:
            node = ProfileNode(event)
            while stack and not _encloses(stack[-1].event, event):
                stack.pop()
            if stack:
                stack[-1].children.append(node)
            else:
                roots.append(node)
            stack.append(node)
    return roots


@dataclass
class PhaseStat:
    """Aggregate self/cumulative time for one span name."""

    name: str
    count: int = 0
    cumulative_ns: int = 0
    self_ns: int = 0


def _walk(node: ProfileNode, stats: Dict[str, PhaseStat]) -> None:
    entry = stats.get(node.event.name)
    if entry is None:
        entry = stats[node.event.name] = PhaseStat(node.event.name)
    entry.count += 1
    entry.cumulative_ns += node.event.duration_ns
    entry.self_ns += node.self_ns
    for child in node.children:
        _walk(child, stats)


def self_time_stats(events: Sequence[TraceEvent]) -> List[PhaseStat]:
    """Per-name aggregates over ``events``, hottest self time first."""
    stats: Dict[str, PhaseStat] = {}
    for root in build_trees(events):
        _walk(root, stats)
    return sorted(
        stats.values(), key=lambda s: (-s.self_ns, -s.cumulative_ns, s.name)
    )


def render_top_table(
    stats: Sequence[PhaseStat], limit: int = 10, total_ns: int = 0
) -> str:
    """The ``repro profile`` hot-phase table (self-time ranked)."""
    if not total_ns:
        total_ns = sum(entry.self_ns for entry in stats)
    lines = [
        f"{'self ms':>10} {'self %':>7} {'cum ms':>10} {'count':>6}  phase",
        f"{'-' * 10} {'-' * 7} {'-' * 10} {'-' * 6}  {'-' * 5}",
    ]
    for entry in list(stats)[:limit]:
        share = 100.0 * entry.self_ns / total_ns if total_ns else 0.0
        lines.append(
            f"{entry.self_ns / 1e6:>10.3f} {share:>6.1f}% "
            f"{entry.cumulative_ns / 1e6:>10.3f} {entry.count:>6}  {entry.name}"
        )
    return "\n".join(lines)


def folded_stacks(events: Sequence[TraceEvent]) -> str:
    """Collapsed-stack output: one ``frame;frame;... <weight>`` line per
    unique stack, weight = self time in whole microseconds (minimum 1 for
    any span with positive self time, so fast phases stay visible).

    Load with ``flamegraph.pl`` or drag into https://speedscope.app.
    """
    weights: Dict[str, int] = {}

    def visit(node: ProfileNode, prefix: str) -> None:
        path = f"{prefix};{node.event.name}" if prefix else node.event.name
        self_ns = node.self_ns
        if self_ns > 0:
            weights[path] = weights.get(path, 0) + max(1, round(self_ns / 1000))
        for child in node.children:
            visit(child, path)

    for root in build_trees(events):
        if not root.event.pid:
            base = ""
        elif not root.event.generation:
            base = f"pid{root.event.pid}"
        else:
            base = f"pid{root.event.pid}.g{root.event.generation}"
        visit(root, base)
    return "".join(f"{path} {weight}\n" for path, weight in sorted(weights.items()))


def write_folded(path: str, events: Sequence[TraceEvent]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(folded_stacks(events))
