"""Structured optimization remarks — the repro's ``-Rpass`` /
``-fsave-optimization-record``.

Every vectorization decision point emits a :class:`Remark`:

* ``passed``   — a transformation was applied (graph vectorized,
  reduction emitted, ...);
* ``missed``   — a transformation was attempted and rejected, with the
  reason (cost, unschedulable seed, gathers, ...);
* ``analysis`` — supporting facts that explain a decision (partial
  gathers inside a *vectorized* graph, Super-Node shapes, ...);
* ``recovery`` — the guarded driver rolled back a failing phase and
  degraded (skipped the phase or descended the config ladder) instead of
  aborting the compile; ``args`` carries phase/config/kind/action.

Each remark carries the pass name, function, block and seed kind plus a
free-form ``args`` dict, and the collection serializes to JSONL (one
remark per line) so external tooling can consume it exactly like clang's
optimization records.

Collection is off by default; :meth:`RemarkCollector.emit` is a single
branch when disabled.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: the remark kinds: clang's -Rpass / -Rpass-missed / -Rpass-analysis
#: triple, plus "recovery" for the guarded driver's rollback records
REMARK_KINDS = ("passed", "missed", "analysis", "recovery")


@dataclass
class Remark:
    """One structured optimization remark."""

    kind: str  # "passed" | "missed" | "analysis"
    pass_name: str  # e.g. "slp", "supernode", "reduction", "minmax"
    message: str
    function: str = ""
    block: str = ""
    #: what seeded the attempt: "store", "reduction", "minmax", ...
    seed: str = ""
    args: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "kind": self.kind,
            "pass": self.pass_name,
            "message": self.message,
        }
        if self.function:
            record["function"] = self.function
        if self.block:
            record["block"] = self.block
        if self.seed:
            record["seed"] = self.seed
        if self.args:
            record["args"] = self.args
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Remark":
        return cls(
            kind=str(record["kind"]),
            pass_name=str(record["pass"]),
            message=str(record["message"]),
            function=str(record.get("function", "")),
            block=str(record.get("block", "")),
            seed=str(record.get("seed", "")),
            args=dict(record.get("args", {})),  # type: ignore[arg-type]
        )


class RemarkCollector:
    """Accumulates remarks; serializes them as JSONL."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.remarks: List[Remark] = []

    # -- emission ----------------------------------------------------------

    def emit(
        self,
        kind: str,
        pass_name: str,
        message: str,
        function: str = "",
        block: str = "",
        seed: str = "",
        **args: object,
    ) -> Optional[Remark]:
        if not self.enabled:
            return None
        assert kind in REMARK_KINDS, kind
        remark = Remark(
            kind=kind,
            pass_name=pass_name,
            message=message,
            function=function,
            block=block,
            seed=seed,
            args=args,
        )
        self.remarks.append(remark)
        return remark

    def passed(self, pass_name: str, message: str, **kw: object) -> Optional[Remark]:
        return self.emit("passed", pass_name, message, **kw)  # type: ignore[arg-type]

    def missed(self, pass_name: str, message: str, **kw: object) -> Optional[Remark]:
        return self.emit("missed", pass_name, message, **kw)  # type: ignore[arg-type]

    def analysis(self, pass_name: str, message: str, **kw: object) -> Optional[Remark]:
        return self.emit("analysis", pass_name, message, **kw)  # type: ignore[arg-type]

    def recovery(self, pass_name: str, message: str, **kw: object) -> Optional[Remark]:
        return self.emit("recovery", pass_name, message, **kw)  # type: ignore[arg-type]

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.remarks.clear()

    # -- queries -----------------------------------------------------------

    def of_kind(self, kind: str) -> List[Remark]:
        return [remark for remark in self.remarks if remark.kind == kind]

    # -- JSONL serialization ----------------------------------------------

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(remark.to_dict(), sort_keys=True) + "\n"
            for remark in self.remarks
        )

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())


def load_remarks(path: str) -> List[Remark]:
    """Parse a remarks JSONL file back into :class:`Remark` objects."""
    remarks: List[Remark] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                remarks.append(Remark.from_dict(json.loads(line)))
    return remarks


# The deprecated process-wide ``REMARKS`` alias (the default session's
# collector) is bound in repro.observe.session.
