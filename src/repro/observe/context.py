"""Request-scoped trace context — the repro's W3C-traceparent.

A :class:`TraceContext` identifies one *request* flowing through the
compile service: a ``trace_id`` shared by every span the request causes
(client submit, queue wait, worker compile phases, degraded-ladder
rungs), the ``span_id`` of the parent span new work should attach under,
and an ``attempt`` counter that increments when the resilience layer (or
the service's crash→respawn+requeue path) re-executes the request — the
retried attempt keeps the trace id, so both attempts land in one tree.

The context crosses process boundaries as a plain ``(trace_id, span_id,
attempt)`` tuple (:meth:`TraceContext.to_wire`) inside pool pipe frames,
and as a JSON object (:meth:`TraceContext.to_doc`) inside JSONL wire
requests.  Inside one process it travels ambiently through a
:mod:`contextvars` variable (:func:`use_trace_context` /
:func:`current_trace_context`), mirroring how
:func:`~repro.observe.session.use_session` carries the session — worker
task runners pick it up without explicit threading.

Ids are minted from a per-process counter salted with the pid, so two
workers never collide and no global RNG is touched (chaos campaigns
replay exactly).  Everything here is inert unless a tracer is enabled —
contexts are only minted on traced paths, so tracing-off runs stay
bit-identical.
"""

from __future__ import annotations

import contextvars
import itertools
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: wire form of a context inside pool pipe frames
WireContext = Tuple[str, str, int]

_IDS = itertools.count(1)


def new_span_id() -> str:
    """A process-unique span id (pid-salted counter, 12 hex chars)."""
    return f"{os.getpid() & 0xFFFF:04x}{next(_IDS) & 0xFFFFFFFF:08x}"


def mint_context() -> "TraceContext":
    """A fresh root context: new trace id, new root span id, attempt 0."""
    trace_id = f"{os.getpid() & 0xFFFFFFFF:08x}{next(_IDS) & 0xFFFFFFFF:08x}"
    return TraceContext(trace_id=trace_id, span_id=new_span_id(), attempt=0)


@dataclass(frozen=True)
class TraceContext:
    """One request's identity: ``(trace id, parent span id, attempt)``."""

    trace_id: str
    span_id: str
    attempt: int = 0

    # -- derivation --------------------------------------------------------

    def child(self, span_id: str) -> "TraceContext":
        """The same trace, parented under ``span_id``."""
        return TraceContext(self.trace_id, span_id, self.attempt)

    def retry(self) -> "TraceContext":
        """The same trace and parent span, one attempt later."""
        return TraceContext(self.trace_id, self.span_id, self.attempt + 1)

    # -- serialization -----------------------------------------------------

    def to_wire(self) -> WireContext:
        return (self.trace_id, self.span_id, self.attempt)

    @classmethod
    def from_wire(cls, raw: Optional[Sequence[object]]) -> Optional["TraceContext"]:
        if raw is None:
            return None
        trace_id, span_id, attempt = raw
        return cls(str(trace_id), str(span_id), int(attempt))

    def to_doc(self) -> Dict[str, object]:
        """JSON form for the JSONL wire protocol's ``"trace"`` field."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "attempt": self.attempt,
        }

    @classmethod
    def from_doc(cls, doc: object) -> Optional["TraceContext"]:
        if not isinstance(doc, dict) or not doc.get("trace_id"):
            return None
        return cls(
            str(doc["trace_id"]),
            str(doc.get("span_id", "")),
            int(doc.get("attempt", 0)),
        )

    def traceparent(self) -> str:
        """W3C-style rendering: ``00-<trace>-<span>-01``."""
        return f"00-{self.trace_id:0>32}-{self.span_id:0>16}-01"


# -- ambient context ----------------------------------------------------------

_CURRENT: contextvars.ContextVar[Optional[TraceContext]] = contextvars.ContextVar(
    "repro_current_trace_context", default=None
)


def current_trace_context() -> Optional[TraceContext]:
    """The ambient request context, or None outside any traced request."""
    return _CURRENT.get()


@contextmanager
def use_trace_context(
    context: Optional[TraceContext],
) -> Iterator[Optional[TraceContext]]:
    """Install ``context`` as the ambient trace context for a scope."""
    token = _CURRENT.set(context)
    try:
        yield context
    finally:
        _CURRENT.reset(token)


# -- span-tree validation ------------------------------------------------------


def validate_span_tree(events: Sequence[object]) -> List[str]:
    """Check causal linkage of a merged span stream; returns problems.

    An event stream is well-linked when every span carrying a trace id
    either is a root (empty ``parent_id``) or names a parent span that
    exists *in the same trace*.  Worker-side spans (``pid != 0``) must
    additionally belong to a trace that has a client-side root — a
    worker span whose trace never reached a request span is an orphan.
    The bench/CI no-orphan gates and the failure-propagation tests all
    call this.
    """
    by_trace: Dict[str, List[object]] = {}
    span_ids: Dict[str, set] = {}
    for event in events:
        trace_id = getattr(event, "trace_id", "")
        if not trace_id:
            continue
        by_trace.setdefault(trace_id, []).append(event)
        span_id = getattr(event, "span_id", "")
        if span_id:
            span_ids.setdefault(trace_id, set()).add(span_id)
    problems: List[str] = []
    for trace_id, trace_events in sorted(by_trace.items()):
        known = span_ids.get(trace_id, set())
        roots = [
            e for e in trace_events if not getattr(e, "parent_id", "")
        ]
        has_client_root = any(
            not getattr(e, "pid", 0) for e in roots
        )
        for event in trace_events:
            parent_id = getattr(event, "parent_id", "")
            if parent_id and parent_id not in known:
                problems.append(
                    f"trace {trace_id}: span {event.name!r} "
                    f"({getattr(event, 'span_id', '')}) references unknown "
                    f"parent {parent_id}"
                )
        if not roots:
            problems.append(f"trace {trace_id}: no root span")
        elif not has_client_root:
            worker_pids = sorted(
                {getattr(e, "pid", 0) for e in trace_events}
            )
            problems.append(
                f"trace {trace_id}: worker spans (pids {worker_pids}) "
                f"have no client-side request root"
            )
    return problems
