"""DOT and JSON dumps of SLP graphs — the repro's ``-view-slp-tree``.

Renders the vectorizer's data structures for human eyes:

* :func:`graph_to_dot` — one :class:`~repro.vectorizer.graph.SLPGraph` as
  Graphviz DOT.  Each bundle is a table with **lanes as columns** (the
  paper's figures), gather nodes are red, Super-Node-massaged bundles are
  grouped in a labeled box, and ALT bundles carry their per-lane ``+/-``
  signs both in the table and on the operand edge;
* :func:`chains_to_dot` — the per-lane expression trees of a
  Multi-/Super-Node (one cluster per lane) with the APO sign of every
  edge, used for the before/after-reorder views the journal captures;
* :func:`graph_to_json` — the same graph as a plain JSON document for
  external tooling.

This module deliberately imports nothing from ``repro.vectorizer`` —
everything is duck-typed.  ``repro.vectorizer`` imports ``repro.observe``
for ``STAT`` at module scope, so a module-level import in the other
direction would cycle through a partially-initialized package; keeping
the renderers structurally typed sidesteps the problem entirely (and is
why they are not re-exported from ``repro.observe``).
"""

from __future__ import annotations

import html
import json
from typing import Dict, List, Optional

#: bundle-kind fill colors, keyed by NodeKind.value (paper figure style:
#: red gathers, green loads, blue stores)
_KIND_COLORS = {
    "store": "#c6dbef",
    "load": "#c7e9c0",
    "vector": "#deebf7",
    "alt": "#fdd0a2",
    "call": "#dadaeb",
    "gather": "#fcbba1",
}

#: opcode-name -> infix symbol for trunk/ALT rendering
_OP_SYMBOLS = {
    "ADD": "+", "FADD": "+", "SUB": "-", "FSUB": "-",
    "MUL": "*", "FMUL": "*", "FDIV": "/", "SDIV": "/",
}


def _esc(text: str) -> str:
    return html.escape(str(text), quote=True)


def _lane_signs(node) -> Optional[str]:
    """Per-lane +/- signs of an ALT bundle (None for uniform bundles)."""
    opcodes = getattr(node, "lane_opcodes", None)
    if not opcodes:
        return None
    return "".join(_OP_SYMBOLS.get(op.name, "?") for op in opcodes)


def _node_label(node, index: int) -> str:
    """HTML-like table label: header row, then one cell per lane."""
    color = _KIND_COLORS.get(node.kind.value, "#ffffff")
    lanes = list(node.lanes)
    span = max(1, len(lanes))
    header = f"{node.kind.value} {_esc(node.vec_type)}"
    signs = _lane_signs(node)
    if signs is not None:
        header += f" [{_esc(signs)}]"
    if getattr(node, "load_reversed", False):
        header += " (reversed)"
    cost = getattr(node, "cost", 0.0)
    rows = [
        f'<TR><TD COLSPAN="{span}" BGCOLOR="{color}">'
        f"<B>{header}</B> cost {cost:+.1f}</TD></TR>"
    ]
    rows.append(
        "<TR>" + "".join(f"<TD>{_esc(v.ref())}</TD>" for v in lanes) + "</TR>"
    )
    reason = getattr(node, "reason", "")
    if reason:
        rows.append(
            f'<TR><TD COLSPAN="{span}"><I>{_esc(reason)}</I></TD></TR>'
        )
    table = (
        '<TABLE BORDER="0" CELLBORDER="1" CELLSPACING="0" CELLPADDING="3">'
        + "".join(rows)
        + "</TABLE>"
    )
    return f"n{index} [shape=plain, label=<{table}>];"


def graph_to_dot(graph, title: str = "") -> str:
    """An :class:`SLPGraph` as Graphviz DOT (lanes as columns).

    Bundles massaged by a Multi-/Super-Node (``SLPNode.from_supernode``)
    are grouped inside a labeled cluster box; edges are labeled with the
    operand index, and the inverse-operand edge of an ALT bundle
    additionally carries the per-lane APO signs.
    """
    ids: Dict[int, int] = {id(n): i for i, n in enumerate(graph.nodes)}
    lines: List[str] = ["digraph slp {", "  rankdir=TB;", "  node [fontsize=10];"]
    label = title or (
        f"SLP graph @ {graph.block.name} (cost {graph.total_cost:+.1f})"
    )
    lines.append(f'  label="{_esc(label)}"; labelloc=t;')

    massaged = [
        n for n in graph.nodes if getattr(n, "from_supernode", False)
    ]
    plain = [n for n in graph.nodes if not getattr(n, "from_supernode", False)]
    for node in plain:
        lines.append("  " + _node_label(node, ids[id(node)]))
    if massaged:
        kinds = {r.kind for r in getattr(graph, "supernodes", [])}
        box = "Super-Node" if "super" in kinds else "Multi-Node"
        lines.append("  subgraph cluster_supernode {")
        lines.append(f'    label="{box}"; style=dashed; color="#756bb1";')
        for node in massaged:
            lines.append("    " + _node_label(node, ids[id(node)]))
        lines.append("  }")

    emitted = set()
    for node in graph.nodes:
        src = ids[id(node)]
        for op_index, operand in enumerate(node.operands):
            key = (src, ids[id(operand)], op_index)
            if key in emitted:
                continue
            emitted.add(key)
            attrs = [f'label="{op_index}"', "fontsize=9"]
            signs = _lane_signs(node)
            if signs is not None and op_index == 1:
                # the RHS operand of an add/sub alternation: per-lane APOs
                attrs = [f'label="{op_index} [{_esc(signs)}]"', "fontsize=9"]
            lines.append(
                f"  n{src} -> n{ids[id(operand)]} [{', '.join(attrs)}];"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"


def graph_to_json(graph) -> Dict[str, object]:
    """An :class:`SLPGraph` as a plain JSON-compatible document."""
    ids: Dict[int, int] = {id(n): i for i, n in enumerate(graph.nodes)}
    nodes = []
    for index, node in enumerate(graph.nodes):
        nodes.append(
            {
                "id": index,
                "kind": node.kind.value,
                "lanes": [v.ref() for v in node.lanes],
                "vec_type": str(node.vec_type),
                "cost": getattr(node, "cost", 0.0),
                "operands": [ids[id(op)] for op in node.operands],
                "lane_signs": _lane_signs(node),
                "reason": getattr(node, "reason", ""),
                "from_supernode": bool(getattr(node, "from_supernode", False)),
            }
        )
    return {
        "block": graph.block.name,
        "total_cost": graph.total_cost,
        "scalar_cost": getattr(graph, "scalar_cost", 0.0),
        "vector_cost": getattr(graph, "vector_cost", 0.0),
        "extract_cost": getattr(graph, "extract_cost", 0.0),
        "root": ids[id(graph.root)],
        "nodes": nodes,
        "supernodes": [
            {
                "kind": r.kind,
                "lanes": r.lanes,
                "size": r.size,
                "family": r.family.name,
                "contains_inverse": r.contains_inverse,
                "leaf_swaps": r.leaf_swaps,
                "trunk_swaps": r.trunk_swaps,
            }
            for r in getattr(graph, "supernodes", [])
        ],
    }


def dump_json(graph) -> str:
    return json.dumps(graph_to_json(graph), indent=2, sort_keys=True)


# -- Multi-/Super-Node lane chains ------------------------------------------------


def _family_sign(family, apo: bool) -> str:
    """APO symbol under ``family`` (duck-typed Opcode)."""
    if family.name in ("MUL", "FMUL"):
        return "/" if apo else "*"
    return "-" if apo else "+"


def chains_to_dot(chains, title: str = "") -> str:
    """Per-lane expression trees of a Multi-/Super-Node as DOT.

    One cluster per lane; trunk units render as their opcode symbol,
    leaves as their IR ref, and **every edge carries the child's APO
    sign** — the annotation the paper's legality rules reason about.
    Render ``node.saved_chains`` for the before-reorder view and
    ``node.chains`` for the after view.
    """
    lines: List[str] = ["digraph chains {", "  rankdir=TB;", "  node [fontsize=10];"]
    if title:
        lines.append(f'  label="{_esc(title)}"; labelloc=t;')
    for lane, chain in enumerate(chains):
        apos = chain.value_apos()
        lines.append(f"  subgraph cluster_lane{lane} {{")
        lines.append(f'    label="lane {lane}"; color="#9ecae1";')
        counter = [0]
        names: Dict[int, str] = {}

        def visit(node) -> str:
            name = f"l{lane}n{counter[0]}"
            counter[0] += 1
            names[id(node)] = name
            if hasattr(node, "children"):  # a TrunkUnit
                sym = _OP_SYMBOLS.get(node.opcode.name, node.opcode.name)
                apo = _family_sign(chain.family, apos[id(node)])
                lines.append(
                    f'    {name} [shape=circle, label="{_esc(sym)}", '
                    f'xlabel="APO {_esc(apo)}"];'
                )
                for child in node.children:
                    child_name = visit(child)
                    sign = _family_sign(chain.family, apos[id(child)])
                    lines.append(
                        f'    {name} -> {child_name} [label="{_esc(sign)}", '
                        "fontsize=9];"
                    )
            else:  # a Leaf
                lines.append(
                    f'    {name} [shape=box, style=rounded, '
                    f'label="{_esc(node.value.ref())}"];'
                )
            return name

        visit(chain.root)
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"
