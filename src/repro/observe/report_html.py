"""``repro report RESULTS.json``: self-contained HTML benchmark reports.

Consumes the JSON document ``repro bench --json`` writes::

    {"target": ..., "seed": ..., "jobs": ...,
     "runs": [{"kernel": ..., "config": ..., "cycles": ...,
               "speedup": ..., "correct": ..., "counters": {...},
               ...optional: "phase_seconds", "vectorized_graphs",
               "attempted_graphs", "journal"}]}

and renders one static HTML file with zero external assets (inline CSS,
no JavaScript, DOT sources embedded as text) so it can be attached to a
CI run and opened anywhere.  With ``--baseline OLD.json`` the report
gains a diff section, and :func:`diff_results` returns the machine
verdict the CLI turns into an exit code: cycle increases beyond the
tolerance, correctness flips, and drops in vectorized-graph counters are
*regressions*; everything else is informational.

Like its siblings this module is duck-typed over plain dicts and imports
nothing from ``repro.vectorizer``.
"""

from __future__ import annotations

import html
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: counters whose *decrease* relative to baseline is a regression (less
#: vectorization happened); all other counter deltas are informational
_COVERAGE_COUNTERS = (
    "slp.graphs-vectorized",
    "slp.stores-vectorized",
    "supernode.nodes-formed",
)

#: cycle increases within this fraction of baseline are noise, not
#: regressions (the simulator is deterministic, so 0 would also work,
#: but the report stays honest if timing-derived inputs appear later)
DEFAULT_CYCLE_TOLERANCE = 0.0


def load_results(path: str) -> Dict[str, object]:
    """Read a ``repro bench`` JSON document."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if "runs" not in doc or not isinstance(doc["runs"], list):
        raise ValueError(f"{path}: not a bench results document (no 'runs' list)")
    return doc


def index_runs(doc: Dict[str, object]) -> Dict[Tuple[str, str], Dict[str, object]]:
    """Key the runs by (kernel, config)."""
    indexed: Dict[Tuple[str, str], Dict[str, object]] = {}
    for run in doc["runs"]:  # type: ignore[index]
        indexed[(str(run["kernel"]), str(run["config"]))] = run
    return indexed


@dataclass
class Delta:
    """One difference between a run and its baseline counterpart."""

    kernel: str
    config: str
    field: str  # "cycles" | "correct" | counter name | "missing"
    old: object
    new: object
    regression: bool

    def describe(self) -> str:
        marker = "REGRESSION" if self.regression else "change"
        return (
            f"{marker}: {self.kernel}/{self.config} {self.field}: "
            f"{self.old} -> {self.new}"
        )


def diff_results(
    doc: Dict[str, object],
    baseline: Dict[str, object],
    cycle_tolerance: float = DEFAULT_CYCLE_TOLERANCE,
) -> List[Delta]:
    """All deltas between ``doc`` and ``baseline``, regressions flagged.

    Pairs runs by (kernel, config).  Runs present only on one side are
    reported as "missing" deltas (a disappeared pair is a regression —
    coverage shrank; a new pair is informational).
    """
    new_runs = index_runs(doc)
    old_runs = index_runs(baseline)
    deltas: List[Delta] = []
    for key in sorted(set(new_runs) | set(old_runs)):
        kernel, config = key
        new = new_runs.get(key)
        old = old_runs.get(key)
        if new is None:
            deltas.append(
                Delta(kernel, config, "missing", "present", "absent", True)
            )
            continue
        if old is None:
            deltas.append(
                Delta(kernel, config, "missing", "absent", "present", False)
            )
            continue
        old_cycles = float(old.get("cycles", 0))
        new_cycles = float(new.get("cycles", 0))
        if new_cycles != old_cycles:
            worse = new_cycles > old_cycles * (1.0 + cycle_tolerance)
            deltas.append(
                Delta(kernel, config, "cycles", old_cycles, new_cycles, worse)
            )
        if bool(old.get("correct", True)) != bool(new.get("correct", True)):
            deltas.append(
                Delta(
                    kernel, config, "correct",
                    old.get("correct"), new.get("correct"),
                    not bool(new.get("correct", True)),
                )
            )
        old_counters = dict(old.get("counters", {}))
        new_counters = dict(new.get("counters", {}))
        for name in sorted(set(old_counters) | set(new_counters)):
            old_value = old_counters.get(name, 0)
            new_value = new_counters.get(name, 0)
            if old_value == new_value:
                continue
            worse = name in _COVERAGE_COUNTERS and new_value < old_value
            deltas.append(
                Delta(kernel, config, name, old_value, new_value, worse)
            )
    return deltas


def regressions(deltas: List[Delta]) -> List[Delta]:
    return [d for d in deltas if d.regression]


# -- HTML rendering -----------------------------------------------------------------

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 70em; color: #1a1a2e; }
h1 { border-bottom: 2px solid #4a4e69; padding-bottom: .2em; }
h2 { color: #4a4e69; margin-top: 2em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #c9c9d4; padding: .35em .7em; text-align: right; }
th { background: #f2f2f7; }
td.name, th.name { text-align: left; font-family: monospace; }
td.best { background: #d8f3dc; font-weight: bold; }
td.bad { background: #ffd7d7; }
tr.regression td { background: #ffd7d7; }
.bar { display: inline-block; height: .8em; background: #7b90c9;
       vertical-align: middle; }
.barlabel { font-size: .85em; color: #555; margin-left: .4em; }
pre.dot { background: #f8f8fb; border: 1px solid #c9c9d4; padding: .8em;
          overflow-x: auto; font-size: .8em; }
p.meta { color: #555; }
.ok { color: #2d6a4f; } .fail { color: #b02a2a; font-weight: bold; }
"""


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _speedup_section(doc: Dict[str, object]) -> List[str]:
    runs = doc["runs"]  # type: ignore[index]
    kernels: List[str] = []
    configs: List[str] = []
    for run in runs:
        if run["kernel"] not in kernels:
            kernels.append(str(run["kernel"]))
        if run["config"] not in configs:
            configs.append(str(run["config"]))
    indexed = index_runs(doc)
    out = ["<h2>Cycles and speedup</h2>", "<table>"]
    out.append(
        "<tr><th class=name>kernel</th>"
        + "".join(f"<th>{_esc(c)}</th>" for c in configs)
        + "</tr>"
    )
    for kernel in kernels:
        cells = [f"<td class=name>{_esc(kernel)}</td>"]
        row = {
            config: indexed.get((kernel, config)) for config in configs
        }
        best = None
        for config, run in row.items():
            if run is not None and run.get("cycles") is not None:
                if best is None or float(run["cycles"]) < best:
                    best = float(run["cycles"])
        for config in configs:
            run = row[config]
            if run is None:
                cells.append("<td>-</td>")
                continue
            classes = []
            if best is not None and float(run["cycles"]) == best:
                classes.append("best")
            if not run.get("correct", True):
                classes.append("bad")
            attr = f" class=\"{' '.join(classes)}\"" if classes else ""
            speedup = run.get("speedup")
            label = f"{float(run['cycles']):.0f}"
            if speedup is not None:
                label += f" ({float(speedup):.2f}x)"
            if not run.get("correct", True):
                label += " WRONG"
            cells.append(f"<td{attr}>{_esc(label)}</td>")
        out.append("<tr>" + "".join(cells) + "</tr>")
    out.append("</table>")
    out.append(
        "<p class=meta>Each cell: simulated cycles (speedup over the "
        "row's baseline config). Green = fastest config for the kernel; "
        "red = produced wrong output.</p>"
    )
    return out


def _coverage_section(doc: Dict[str, object]) -> List[str]:
    runs = doc["runs"]  # type: ignore[index]
    total = len(runs)
    correct = sum(1 for run in runs if run.get("correct", True))
    vectorized = sum(
        int(run.get("vectorized_graphs", 0) or 0) for run in runs
    )
    attempted = sum(
        int(run.get("attempted_graphs", 0) or 0) for run in runs
    )
    out = ["<h2>Coverage</h2>", "<ul>"]
    status = "ok" if correct == total else "fail"
    out.append(
        f"<li><span class={status}>{correct}/{total}</span> "
        "kernel/config pairs produced correct output</li>"
    )
    if attempted:
        out.append(
            f"<li>{vectorized}/{attempted} attempted SLP graphs "
            "vectorized across the suite</li>"
        )
    out.append("</ul>")
    return out


def _counters_section(doc: Dict[str, object]) -> List[str]:
    totals: Dict[str, float] = {}
    for run in doc["runs"]:  # type: ignore[index]
        for name, value in dict(run.get("counters", {})).items():
            totals[name] = totals.get(name, 0) + value
    if not totals:
        return []
    out = ["<h2>Counters (summed over all runs)</h2>", "<table>"]
    out.append("<tr><th class=name>counter</th><th>total</th></tr>")
    for name in sorted(totals):
        value = totals[name]
        shown = f"{value:g}"
        out.append(
            f"<tr><td class=name>{_esc(name)}</td><td>{_esc(shown)}</td></tr>"
        )
    out.append("</table>")
    return out


def _cache_section(doc: Dict[str, object]) -> List[str]:
    """Compile-cache effectiveness: the ``cache.hit_rate`` gauge.

    Prefers the gauge recorded in the document's ``metrics`` block (written
    by ``repro bench --json`` when metrics are armed); falls back to
    recomputing it from the summed ``cache.hits``/``cache.misses`` run
    counters so older documents still get the section.
    """
    metrics = dict(doc.get("metrics", {}) or {})
    gauges = dict(metrics.get("gauges", {}) or {})
    hits = misses = 0.0
    for run in doc["runs"]:  # type: ignore[index]
        counters = dict(run.get("counters", {}))
        hits += float(counters.get("cache.hits", 0))
        misses += float(counters.get("cache.misses", 0))
    lookups = hits + misses
    rate = gauges.get("cache.hit_rate")
    if rate is None and lookups:
        rate = hits / lookups
    if rate is None:
        return []
    out = ["<h2>Compile cache</h2>", "<ul>"]
    out.append(f"<li>hit rate: <b>{float(rate):.1%}</b></li>")
    if lookups:
        out.append(
            f"<li>{hits:g} hit(s), {misses:g} miss(es) over "
            f"{lookups:g} lookup(s)</li>"
        )
    out.append("</ul>")
    return out


def _metrics_section(doc: Dict[str, object]) -> List[str]:
    """Session metrics summary: gauges plus histogram percentiles."""
    metrics = dict(doc.get("metrics", {}) or {})
    gauges = dict(metrics.get("gauges", {}) or {})
    histograms = dict(metrics.get("histograms", {}) or {})
    if not gauges and not histograms:
        return []
    out = ["<h2>Session metrics</h2>"]
    if gauges:
        out.append("<table>")
        out.append("<tr><th class=name>gauge</th><th>value</th></tr>")
        for name in sorted(gauges):
            out.append(
                f"<tr><td class=name>{_esc(name)}</td>"
                f"<td>{float(gauges[name]):g}</td></tr>"
            )
        out.append("</table>")
    if histograms:
        out.append("<table>")
        out.append(
            "<tr><th class=name>histogram</th><th>count</th>"
            "<th>p50</th><th>p90</th><th>p99</th><th>sum</th></tr>"
        )
        for name in sorted(histograms):
            summary = dict(histograms[name])
            cells = "".join(
                f"<td>{float(summary.get(key, 0) or 0):g}</td>"
                for key in ("count", "p50", "p90", "p99", "sum")
            )
            out.append(
                f"<tr><td class=name>{_esc(name)}</td>{cells}</tr>"
            )
        out.append("</table>")
        out.append(
            "<p class=meta>Histogram percentiles are interpolated from "
            "fixed exponential buckets (see <code>repro.observe."
            "metrics</code>); sums are exact.</p>"
        )
    return out


def _phase_section(doc: Dict[str, object]) -> List[str]:
    totals: Dict[str, float] = {}
    for run in doc["runs"]:  # type: ignore[index]
        for phase, seconds in dict(run.get("phase_seconds", {})).items():
            totals[phase] = totals.get(phase, 0.0) + float(seconds)
    if not totals:
        return []
    widest = max(totals.values()) or 1.0
    out = ["<h2>Compile time by phase</h2>", "<table>"]
    out.append("<tr><th class=name>phase</th><th>seconds</th><th></th></tr>")
    for phase, seconds in sorted(totals.items(), key=lambda p: -p[1]):
        width = max(1, int(260 * seconds / widest))
        out.append(
            f"<tr><td class=name>{_esc(phase)}</td>"
            f"<td>{seconds:.4f}</td>"
            f"<td style='text-align:left'><span class=bar "
            f"style='width:{width}px'></span></td></tr>"
        )
    out.append("</table>")
    return out


def _diff_section(deltas: List[Delta]) -> List[str]:
    out = ["<h2>Baseline comparison</h2>"]
    if not deltas:
        out.append("<p class=ok>No differences against the baseline.</p>")
        return out
    bad = regressions(deltas)
    if bad:
        out.append(
            f"<p class=fail>{len(bad)} regression(s) against the "
            "baseline.</p>"
        )
    else:
        out.append(
            f"<p class=ok>{len(deltas)} difference(s), none regressive.</p>"
        )
    out.append("<table>")
    out.append(
        "<tr><th class=name>kernel</th><th class=name>config</th>"
        "<th class=name>field</th><th>baseline</th><th>current</th></tr>"
    )
    for delta in deltas:
        row_class = " class=regression" if delta.regression else ""
        out.append(
            f"<tr{row_class}><td class=name>{_esc(delta.kernel)}</td>"
            f"<td class=name>{_esc(delta.config)}</td>"
            f"<td class=name>{_esc(delta.field)}</td>"
            f"<td>{_esc(delta.old)}</td><td>{_esc(delta.new)}</td></tr>"
        )
    out.append("</table>")
    return out


def _dot_section(dots: Dict[str, str]) -> List[str]:
    if not dots:
        return []
    out = [
        "<h2>SLP graphs for the slowest kernels</h2>",
        "<p class=meta>DOT sources (render with <code>dot -Tsvg</code>); "
        "the worst-performing kernels' final graphs, straight from the "
        "decision journal.</p>",
    ]
    for name in sorted(dots):
        out.append(f"<h3>{_esc(name)}</h3>")
        out.append(f"<pre class=dot>{_esc(dots[name])}</pre>")
    return out


def render_report(
    doc: Dict[str, object],
    baseline: Optional[Dict[str, object]] = None,
    dots: Optional[Dict[str, str]] = None,
    title: str = "SLP benchmark report",
    cycle_tolerance: float = DEFAULT_CYCLE_TOLERANCE,
) -> Tuple[str, List[Delta]]:
    """Render the report; return (html_text, deltas-vs-baseline).

    ``deltas`` is empty when no baseline was given; the CLI exits with
    the mismatch code when any delta has ``regression=True``.
    """
    deltas: List[Delta] = []
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        f"<h1>{_esc(title)}</h1>",
        "<p class=meta>"
        f"target: <code>{_esc(doc.get('target', '?'))}</code>, "
        f"seed: <code>{_esc(doc.get('seed', '?'))}</code>, "
        f"jobs: <code>{_esc(doc.get('jobs', '?'))}</code>, "
        f"runs: <code>{len(doc['runs'])}</code></p>",  # type: ignore[index, arg-type]
    ]
    parts.extend(_speedup_section(doc))
    parts.extend(_coverage_section(doc))
    if baseline is not None:
        deltas = diff_results(doc, baseline, cycle_tolerance)
        parts.extend(_diff_section(deltas))
    parts.extend(_counters_section(doc))
    parts.extend(_cache_section(doc))
    parts.extend(_metrics_section(doc))
    parts.extend(_phase_section(doc))
    parts.extend(_dot_section(dots or {}))
    parts.append("</body></html>")
    return "\n".join(parts) + "\n", deltas


def write_report(
    path: str,
    doc: Dict[str, object],
    baseline: Optional[Dict[str, object]] = None,
    dots: Optional[Dict[str, str]] = None,
    title: str = "SLP benchmark report",
    cycle_tolerance: float = DEFAULT_CYCLE_TOLERANCE,
) -> List[Delta]:
    """Render to ``path``; return the deltas (for the exit code)."""
    text, deltas = render_report(
        doc, baseline=baseline, dots=dots, title=title,
        cycle_tolerance=cycle_tolerance,
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return deltas
