"""Decision journal — typed, session-scoped vectorizer decision events.

Counters say *how often* the vectorizer did something; remarks say *what*
it decided; the journal records *why*: every seed bundle found or
rejected, every look-ahead score matrix, every APO leaf/trunk reorder
that legalized a group, every Super-Node formation, and every cost-model
verdict, in the order the vectorizer made them.  ``repro explain``
(:mod:`repro.observe.explain`) renders the stream as a per-graph
narrative, and the DOT snapshots embedded in "graph"/"supernode" events
power the visualizations (:mod:`repro.observe.dot`).

The journal follows the same cost contract as the tracer and the remark
collector: :meth:`DecisionJournal.emit` is a single branch while
disabled, so the vectorizer's hot paths pay one attribute test per
decision point when nobody is watching.  Each event carries the graph id
assigned by :meth:`DecisionJournal.begin_graph` plus the ambient
function/block/seed-kind context, so deep emit sites (the reorder pass,
the cost model) need no explicit context threading.

Events serialize to JSONL (one event per line, like remarks) via
:meth:`DecisionJournal.to_jsonl` / :func:`load_journal`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .stats import STAT

STAT_EVENTS = STAT("journal.events-recorded", "decision journal events recorded")

#: the decision-event vocabulary, in rough pipeline order:
#:
#: * ``seed``          — a seed bundle entered the worklist (adjacent
#:                       stores, a reduction chain, a min/max idiom)
#: * ``seed-rejected`` — a candidate seed was discarded before building
#:                       a graph, with the reason
#: * ``supernode``     — chain massaging grouped commutative trunks into
#:                       a Super-Node; args carry per-lane APO strings
#:                       and a before-reorder DOT snapshot
#: * ``lookahead``     — the look-ahead scorer ranked candidate operand
#:                       groups at one operand index (the score matrix)
#: * ``group``         — the winning group was locked in, with the APO
#:                       leaf/trunk swaps that legalized each lane
#: * ``reorder``       — reordering finished for a Super-Node; args
#:                       carry totals and the after-reorder DOT snapshot
#: * ``graph``         — an SLP graph was fully built (node/gather
#:                       counts, dump, DOT)
#: * ``cost``          — the cost model's verdict with the
#:                       scalar/vector/extract breakdown
#: * ``undo``          — emitted vector code was rolled back (cost
#:                       rejection or codegen failure)
EVENT_KINDS = (
    "seed",
    "seed-rejected",
    "supernode",
    "lookahead",
    "group",
    "reorder",
    "graph",
    "cost",
    "undo",
)


@dataclass
class JournalEvent:
    """One recorded decision."""

    kind: str  # one of EVENT_KINDS
    message: str
    #: journal-assigned id tying the event to one graph attempt; -1 for
    #: events outside any attempt
    graph_id: int = -1
    function: str = ""
    block: str = ""
    #: what seeded the attempt: "store", "reduction", "minmax"
    seed: str = ""
    args: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "kind": self.kind,
            "message": self.message,
            "graph_id": self.graph_id,
        }
        if self.function:
            record["function"] = self.function
        if self.block:
            record["block"] = self.block
        if self.seed:
            record["seed"] = self.seed
        if self.args:
            record["args"] = self.args
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "JournalEvent":
        return cls(
            kind=str(record["kind"]),
            message=str(record["message"]),
            graph_id=int(record.get("graph_id", -1)),
            function=str(record.get("function", "")),
            block=str(record.get("block", "")),
            seed=str(record.get("seed", "")),
            args=dict(record.get("args", {})),  # type: ignore[arg-type]
        )


class DecisionJournal:
    """Accumulates :class:`JournalEvent`\\ s for one session.

    ``begin_graph``/``end_graph`` bracket one graph attempt: they assign
    an incrementing graph id and stash the function/block/seed-kind
    context so every :meth:`emit` between them is tagged automatically.
    Attempts never nest (the vectorizer tries one seed at a time), so a
    plain current-attempt slot suffices.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.events: List[JournalEvent] = []
        self._next_graph_id = 0
        self._graph_id = -1
        self._function = ""
        self._block = ""
        self._seed = ""

    # -- attempt context ---------------------------------------------------

    def begin_graph(self, function: str = "", block: str = "", seed: str = "") -> int:
        """Open a graph attempt; subsequent emits inherit its context."""
        self._graph_id = self._next_graph_id
        self._next_graph_id += 1
        self._function = function
        self._block = block
        self._seed = seed
        return self._graph_id

    def end_graph(self) -> None:
        self._graph_id = -1
        self._function = ""
        self._block = ""
        self._seed = ""

    # -- emission ----------------------------------------------------------

    def emit(self, kind: str, message: str, **args: object) -> Optional[JournalEvent]:
        if not self.enabled:
            return None
        assert kind in EVENT_KINDS, kind
        event = JournalEvent(
            kind=kind,
            message=message,
            graph_id=self._graph_id,
            function=self._function,
            block=self._block,
            seed=self._seed,
            args=args,
        )
        self.events.append(event)
        STAT_EVENTS.add()
        return event

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.events.clear()
        self._next_graph_id = 0
        self.end_graph()

    # -- queries -----------------------------------------------------------

    def of_kind(self, kind: str) -> List[JournalEvent]:
        return [event for event in self.events if event.kind == kind]

    def for_graph(self, graph_id: int) -> List[JournalEvent]:
        return [event for event in self.events if event.graph_id == graph_id]

    def graph_ids(self) -> List[int]:
        """Distinct graph ids in first-appearance (attempt) order."""
        seen: List[int] = []
        for event in self.events:
            if event.graph_id >= 0 and event.graph_id not in seen:
                seen.append(event.graph_id)
        return seen

    # -- JSONL serialization ----------------------------------------------

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(event.to_dict(), sort_keys=True) + "\n"
            for event in self.events
        )

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())


def load_journal(path: str) -> List[JournalEvent]:
    """Parse a journal JSONL file back into :class:`JournalEvent` objects."""
    events: List[JournalEvent] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(JournalEvent.from_dict(json.loads(line)))
    return events


def summarize_journal(events: List[JournalEvent]) -> Dict[str, object]:
    """A compact aggregate of a journal stream, suitable for attaching to
    bench-result JSON rows: per-kind event counts plus the accept/reject
    tallies of the cost-model verdicts."""
    kinds: Dict[str, int] = {}
    accepted = rejected = 0
    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
        if event.kind == "cost":
            if event.args.get("verdict") == "profitable":
                accepted += 1
            else:
                rejected += 1
    return {
        "events": len(events),
        "kinds": dict(sorted(kinds.items())),
        "graphs": len({e.graph_id for e in events if e.graph_id >= 0}),
        "cost_accepted": accepted,
        "cost_rejected": rejected,
    }
