"""Observability: tracing, statistics and optimization remarks.

The LLVM-style introspection triple for this Python compiler:

* :mod:`repro.observe.trace`   — hierarchical span tracer exporting Chrome
  trace-event JSON (``-time-passes`` / ``-ftime-trace``);
* :mod:`repro.observe.stats`   — named counter registry with
  snapshot/reset semantics (``-stats``);
* :mod:`repro.observe.remarks` — structured passed/missed/analysis
  optimization remarks serialized as JSONL (``-Rpass`` /
  ``-fsave-optimization-record``);
* :mod:`repro.observe.journal` — the decision journal: typed per-graph
  vectorizer decision events (seeds, look-ahead scores, APO reorders,
  cost verdicts) that power ``repro explain``;
* :mod:`repro.observe.metrics` — session-scoped gauges, timers and
  fixed-bucket histograms with Prometheus text exposition
  (``--metrics-out``);
* :mod:`repro.observe.context` — request-scoped :class:`TraceContext`
  (trace id, parent span id, attempt) carried through service envelopes
  so worker spans parent into one cross-process tree per request;
* :mod:`repro.observe.log`     — leveled structured JSONL event log for
  service/ops paths (crashes, retries, degradations), trace-correlated;
* :mod:`repro.observe.profile` — self-time attribution and folded
  flamegraph export over recorded tracer spans (``repro profile``);
* :mod:`repro.observe.history` — the sqlite run-history store with
  trend tables and MAD anomaly gating (``repro history``);
* :mod:`repro.observe.session` — :class:`CompilerSession`, the explicit
  bundle of all of the above that makes compilation reentrant.  Each
  compilation runs in its own derived session, so counters are isolated
  without any global reset and compilations can run concurrently.

All of these are off (or free) by default: the tracer, remark collector
and journal cost one branch per call site while disabled, and counters
are plain attribute increments.  The CLI's ``--trace-out``, ``--stats``,
``--remarks`` and ``--journal`` flags switch them on for the command's
session.

The renderers that *consume* this data — :mod:`repro.observe.dot`
(SLP graph DOT/JSON dumps), :mod:`repro.observe.explain` (per-graph
narratives) and :mod:`repro.observe.report_html` (single-file bench
reports) — are deliberately not re-exported here: they reach into
``repro.vectorizer``, and importing them at package init would create a
cycle (the vectorizer imports ``repro.observe`` for ``STAT``).

``STATS`` / ``TRACER`` / ``REMARKS`` remain importable as deprecated
aliases of the *default* session's components (see
:mod:`repro.observe.session`).
"""

from .context import (
    TraceContext,
    current_trace_context,
    mint_context,
    new_span_id,
    use_trace_context,
    validate_span_tree,
)
from .trace import TraceEvent, Tracer, load_chrome_trace
from .stats import STAT, STAT_CATALOG, StatProxy, Statistic, StatsRegistry
from .metrics import Histogram, MetricsRegistry, exact_percentile
from .remarks import REMARK_KINDS, Remark, RemarkCollector, load_remarks
from .journal import (
    EVENT_KINDS,
    DecisionJournal,
    JournalEvent,
    load_journal,
    summarize_journal,
)
from .log import LOG_LEVELS, EventLog, LogEvent, load_event_log
from .session import (
    DEFAULT_SESSION,
    REMARKS,
    STATS,
    TRACER,
    CompilerSession,
    current_journal,
    current_log,
    current_metrics,
    current_remarks,
    current_session,
    current_stats,
    current_tracer,
    use_session,
)

__all__ = [
    "TRACER",
    "Tracer",
    "TraceEvent",
    "TraceContext",
    "mint_context",
    "new_span_id",
    "current_trace_context",
    "use_trace_context",
    "validate_span_tree",
    "load_chrome_trace",
    "STAT",
    "STAT_CATALOG",
    "STATS",
    "StatProxy",
    "Statistic",
    "StatsRegistry",
    "Histogram",
    "MetricsRegistry",
    "exact_percentile",
    "REMARKS",
    "REMARK_KINDS",
    "Remark",
    "RemarkCollector",
    "load_remarks",
    "EVENT_KINDS",
    "DecisionJournal",
    "JournalEvent",
    "load_journal",
    "summarize_journal",
    "LOG_LEVELS",
    "EventLog",
    "LogEvent",
    "load_event_log",
    "CompilerSession",
    "DEFAULT_SESSION",
    "current_session",
    "current_stats",
    "current_tracer",
    "current_remarks",
    "current_journal",
    "current_metrics",
    "current_log",
    "use_session",
]
