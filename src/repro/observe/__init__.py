"""Observability: tracing, statistics and optimization remarks.

The LLVM-style introspection triple for this Python compiler:

* :mod:`repro.observe.trace`   — hierarchical span tracer exporting Chrome
  trace-event JSON (``-time-passes`` / ``-ftime-trace``);
* :mod:`repro.observe.stats`   — named counter registry with
  snapshot/reset semantics (``-stats``);
* :mod:`repro.observe.remarks` — structured passed/missed/analysis
  optimization remarks serialized as JSONL (``-Rpass`` /
  ``-fsave-optimization-record``);
* :mod:`repro.observe.session` — :class:`CompilerSession`, the explicit
  bundle of all three that makes compilation reentrant.  Each
  compilation runs in its own derived session, so counters are isolated
  without any global reset and compilations can run concurrently.

All three are off (or free) by default: the tracer and remark collector
cost one branch per call site while disabled, and counters are plain
attribute increments.  The CLI's ``--trace-out``, ``--stats`` and
``--remarks`` flags switch them on for the command's session.

``STATS`` / ``TRACER`` / ``REMARKS`` remain importable as deprecated
aliases of the *default* session's components (see
:mod:`repro.observe.session`).
"""

from .trace import TraceEvent, Tracer
from .stats import STAT, STAT_CATALOG, StatProxy, Statistic, StatsRegistry
from .remarks import REMARK_KINDS, Remark, RemarkCollector, load_remarks
from .session import (
    DEFAULT_SESSION,
    REMARKS,
    STATS,
    TRACER,
    CompilerSession,
    current_remarks,
    current_session,
    current_stats,
    current_tracer,
    use_session,
)

__all__ = [
    "TRACER",
    "Tracer",
    "TraceEvent",
    "STAT",
    "STAT_CATALOG",
    "STATS",
    "StatProxy",
    "Statistic",
    "StatsRegistry",
    "REMARKS",
    "REMARK_KINDS",
    "Remark",
    "RemarkCollector",
    "load_remarks",
    "CompilerSession",
    "DEFAULT_SESSION",
    "current_session",
    "current_stats",
    "current_tracer",
    "current_remarks",
    "use_session",
]
