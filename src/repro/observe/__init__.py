"""Observability: tracing, statistics and optimization remarks.

The LLVM-style introspection triple for this Python compiler:

* :mod:`repro.observe.trace`   — hierarchical span tracer exporting Chrome
  trace-event JSON (``-time-passes`` / ``-ftime-trace``);
* :mod:`repro.observe.stats`   — named counter registry with
  snapshot/reset semantics (``-stats``);
* :mod:`repro.observe.remarks` — structured passed/missed/analysis
  optimization remarks serialized as JSONL (``-Rpass`` /
  ``-fsave-optimization-record``).

All three are off (or free) by default: the tracer and remark collector
cost one branch per call site while disabled, and counters are plain
attribute increments.  The CLI's ``--trace-out``, ``--stats`` and
``--remarks`` flags switch them on; ``compile_module`` resets counters per
compilation so benchmark runs stay isolated.
"""

from .trace import TRACER, TraceEvent, Tracer
from .stats import STAT, STATS, Statistic, StatsRegistry
from .remarks import REMARK_KINDS, REMARKS, Remark, RemarkCollector, load_remarks

__all__ = [
    "TRACER",
    "Tracer",
    "TraceEvent",
    "STAT",
    "STATS",
    "Statistic",
    "StatsRegistry",
    "REMARKS",
    "REMARK_KINDS",
    "Remark",
    "RemarkCollector",
    "load_remarks",
]
