"""Hierarchical span tracing — the repro's ``-time-passes``.

A :class:`Tracer` records nested spans (context-manager API, monotonic
clocks) and exports them as Chrome trace-event JSON, loadable directly by
``chrome://tracing`` / Perfetto.  The compilation pipeline opens one span
per phase, the vectorizer one per seed graph, and the simulator one per
invocation, so a single trace file shows where a whole benchmark run
spends its time.

Tracing is off by default.  When disabled, :meth:`Tracer.span` returns a
shared no-op context manager after a single attribute test, so the cost of
leaving instrumentation in hot paths is one branch — the same contract as
LLVM's ``TimeTraceScope``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .context import TraceContext, new_span_id


@dataclass
class TraceEvent:
    """One completed span.

    ``depth`` is the nesting level at the time the span opened (0 = root);
    events are appended in *completion* order, so children precede their
    parent in :attr:`Tracer.events`.
    """

    name: str
    start_ns: int
    duration_ns: int
    depth: int
    args: Dict[str, object] = field(default_factory=dict)
    #: originating OS process, for spans merged in from ProcessPool
    #: workers (repro.bench.parallel); 0 means "this process"
    pid: int = 0
    #: worker-pool generation of the originating process (respawns bump
    #: it); tracks are keyed by (generation, pid) because the OS reuses
    #: pids across service generations
    generation: int = 0
    #: distributed-trace linkage (empty outside a bound request context)
    trace_id: str = ""
    span_id: str = ""
    parent_id: str = ""

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns

    def contains(self, other: "TraceEvent") -> bool:
        """Whether ``other`` nests (time-wise) inside this span."""
        return self.start_ns <= other.start_ns and other.end_ns <= self.end_ns


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; created only when the tracer is enabled."""

    __slots__ = (
        "tracer", "name", "args", "start_ns", "depth",
        "trace_id", "span_id", "parent_id",
    )

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, object]) -> None:
        self.tracer = tracer
        self.name = name
        self.args = args
        self.trace_id = ""
        self.span_id = ""
        self.parent_id = ""

    def __enter__(self) -> "_Span":
        stack = self.tracer._stack
        self.depth = len(stack)
        binding = self.tracer._binding
        if binding:
            # A request context is bound: give this span an identity and
            # parent it under the enclosing live span (if that span is
            # itself bound) or the request's parent span.
            context = binding[-1]
            enclosing = stack[-1] if stack else None
            self.trace_id = context.trace_id
            self.span_id = new_span_id()
            if enclosing is not None and enclosing.span_id:
                self.parent_id = enclosing.span_id
            else:
                self.parent_id = context.span_id
        stack.append(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end_ns = time.perf_counter_ns()
        stack = self.tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        self.tracer.events.append(
            TraceEvent(
                name=self.name,
                start_ns=self.start_ns,
                duration_ns=end_ns - self.start_ns,
                depth=self.depth,
                args=self.args,
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
            )
        )


class Tracer:
    """Collects hierarchical spans; exportable as Chrome trace JSON."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self._stack: List[_Span] = []
        self._binding: List[TraceContext] = []

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **args: object):
        """Open a span: ``with TRACER.span("vectorize", config="SN-SLP")``.

        Returns a shared no-op context manager when tracing is disabled.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, args)

    @contextmanager
    def bind(
        self, context: Optional[TraceContext]
    ) -> Iterator[Optional[TraceContext]]:
        """Attribute spans opened in this scope to a request context.

        While bound (and enabled), every completed span carries the
        context's ``trace_id``, a fresh ``span_id``, and a ``parent_id``
        chaining it to the enclosing span (or to ``context.span_id`` at
        the top of the stack) — the cross-process causal links the
        distributed span tree is assembled from.  ``bind(None)`` and
        binding a disabled tracer are no-ops, preserving the one-branch
        disabled contract.
        """
        if context is None or not self.enabled:
            yield None
            return
        self._binding.append(context)
        try:
            yield context
        finally:
            self._binding.pop()

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.events.clear()
        self._stack.clear()
        self._binding.clear()

    # -- queries -----------------------------------------------------------

    def named(self, name: str) -> List[TraceEvent]:
        return [event for event in self.events if event.name == name]

    def total_ns(self, name: str) -> int:
        return sum(event.duration_ns for event in self.named(name))

    # -- Chrome trace-event export ----------------------------------------

    def to_chrome_trace(self) -> Dict[str, object]:
        """The trace as a Chrome trace-event JSON object.

        Complete ("X") events with microsecond timestamps.  Spans merged
        in from service workers render one process track per **(pid,
        generation)** pair — not per pid, because the OS reuses pids and
        a post-respawn worker's spans would otherwise collide with its
        predecessor's track.  Synthetic track ids are assigned in first-
        appearance order (the parent process is always track 1) and
        labelled through ``process_name`` metadata events.  Spans bound
        to a request context carry ``trace_id``/``span_id``/``parent_id``
        in their args, so the file round-trips through
        :func:`load_chrome_trace` with causal links intact.
        """
        tracks: Dict[tuple, int] = {(0, 0): 1}
        trace_events: List[Dict[str, object]] = []
        for event in self.events:
            key = (event.pid, event.generation)
            track = tracks.get(key)
            if track is None:
                track = len(tracks) + 1
                tracks[key] = track
            record: Dict[str, object] = {
                "name": event.name,
                "ph": "X",
                "ts": event.start_ns / 1000.0,
                "dur": event.duration_ns / 1000.0,
                "pid": track,
                "tid": 1,
            }
            args = (
                {k: str(v) for k, v in event.args.items()}
                if event.args else {}
            )
            if event.trace_id:
                args["trace_id"] = event.trace_id
                args["span_id"] = event.span_id
                args["parent_id"] = event.parent_id
            if event.pid:
                args["worker_pid"] = str(event.pid)
                args["worker_generation"] = str(event.generation)
            if args:
                record["args"] = args
            trace_events.append(record)
        metadata: List[Dict[str, object]] = []
        for (pid, generation), track in sorted(
            tracks.items(), key=lambda item: item[1]
        ):
            if pid == 0:
                label = "parent"
            elif generation == 0:
                label = f"worker pid {pid}"
            else:
                label = f"worker pid {pid} gen {generation}"
            metadata.append({
                "name": "process_name",
                "ph": "M",
                "pid": track,
                "tid": 1,
                "args": {"name": label},
            })
        return {
            "traceEvents": metadata + trace_events,
            "displayTimeUnit": "ms",
        }

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)
            handle.write("\n")


def load_chrome_trace(path: str) -> List[TraceEvent]:
    """Parse a written Chrome trace back into :class:`TraceEvent` objects.

    The inverse of :meth:`Tracer.write_chrome_trace`, up to arg
    stringification: complete ("X") events become TraceEvents with their
    trace linkage and worker pid/generation recovered from args, which
    is everything ``repro waterfall`` needs to regroup a trace file into
    per-request latency breakdowns.
    """
    with open(path) as handle:
        document = json.load(handle)
    events: List[TraceEvent] = []
    for record in document.get("traceEvents", []):
        if record.get("ph") != "X":
            continue
        args = dict(record.get("args", {}))
        trace_id = str(args.pop("trace_id", ""))
        span_id = str(args.pop("span_id", ""))
        parent_id = str(args.pop("parent_id", ""))
        pid = int(args.pop("worker_pid", 0))
        generation = int(args.pop("worker_generation", 0))
        events.append(
            TraceEvent(
                name=str(record.get("name", "")),
                start_ns=int(float(record.get("ts", 0.0)) * 1000.0),
                duration_ns=int(float(record.get("dur", 0.0)) * 1000.0),
                depth=0,
                args=args,
                pid=pid,
                generation=generation,
                trace_id=trace_id,
                span_id=span_id,
                parent_id=parent_id,
            )
        )
    return events


# The deprecated process-wide ``TRACER`` alias (the default session's
# tracer) is bound in repro.observe.session.
