"""Hierarchical span tracing — the repro's ``-time-passes``.

A :class:`Tracer` records nested spans (context-manager API, monotonic
clocks) and exports them as Chrome trace-event JSON, loadable directly by
``chrome://tracing`` / Perfetto.  The compilation pipeline opens one span
per phase, the vectorizer one per seed graph, and the simulator one per
invocation, so a single trace file shows where a whole benchmark run
spends its time.

Tracing is off by default.  When disabled, :meth:`Tracer.span` returns a
shared no-op context manager after a single attribute test, so the cost of
leaving instrumentation in hot paths is one branch — the same contract as
LLVM's ``TimeTraceScope``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class TraceEvent:
    """One completed span.

    ``depth`` is the nesting level at the time the span opened (0 = root);
    events are appended in *completion* order, so children precede their
    parent in :attr:`Tracer.events`.
    """

    name: str
    start_ns: int
    duration_ns: int
    depth: int
    args: Dict[str, object] = field(default_factory=dict)
    #: originating OS process, for spans merged in from ProcessPool
    #: workers (repro.bench.parallel); 0 means "this process"
    pid: int = 0

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns

    def contains(self, other: "TraceEvent") -> bool:
        """Whether ``other`` nests (time-wise) inside this span."""
        return self.start_ns <= other.start_ns and other.end_ns <= self.end_ns


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; created only when the tracer is enabled."""

    __slots__ = ("tracer", "name", "args", "start_ns", "depth")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, object]) -> None:
        self.tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        self.depth = len(self.tracer._stack)
        self.tracer._stack.append(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end_ns = time.perf_counter_ns()
        stack = self.tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        self.tracer.events.append(
            TraceEvent(
                name=self.name,
                start_ns=self.start_ns,
                duration_ns=end_ns - self.start_ns,
                depth=self.depth,
                args=self.args,
            )
        )


class Tracer:
    """Collects hierarchical spans; exportable as Chrome trace JSON."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self._stack: List[_Span] = []

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **args: object):
        """Open a span: ``with TRACER.span("vectorize", config="SN-SLP")``.

        Returns a shared no-op context manager when tracing is disabled.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, args)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.events.clear()
        self._stack.clear()

    # -- queries -----------------------------------------------------------

    def named(self, name: str) -> List[TraceEvent]:
        return [event for event in self.events if event.name == name]

    def total_ns(self, name: str) -> int:
        return sum(event.duration_ns for event in self.named(name))

    # -- Chrome trace-event export ----------------------------------------

    def to_chrome_trace(self) -> Dict[str, object]:
        """The trace as a Chrome trace-event JSON object.

        Complete ("X") events with microsecond timestamps; ``tid`` carries
        the nesting depth so the viewer renders one row per level even
        though everything ran on one thread.  Spans merged in from
        ProcessPool workers keep their worker ``pid``, so a parallel
        benchmark renders one process track per worker.
        """
        trace_events: List[Dict[str, object]] = []
        for event in self.events:
            record: Dict[str, object] = {
                "name": event.name,
                "ph": "X",
                "ts": event.start_ns / 1000.0,
                "dur": event.duration_ns / 1000.0,
                "pid": event.pid or 1,
                "tid": 1,
            }
            if event.args:
                record["args"] = {k: str(v) for k, v in event.args.items()}
            trace_events.append(record)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)
            handle.write("\n")


# The deprecated process-wide ``TRACER`` alias (the default session's
# tracer) is bound in repro.observe.session.
