"""Compare targets: vector width and addsub support change the outcome.

Runs the milc-like complex-multiply kernel under SN-SLP on all modelled
targets (256-bit Skylake-like, 128-bit SSE4-like, 256-bit without native
addsub, scalar-only) and shows how the cost model's answers shift:
narrower vectors halve the lane count, a missing addsub family makes
alternating add/sub lanes pay a blend penalty, and the scalar target
yields no seeds at all.
"""

import random

from repro.bench import run_kernel_config
from repro.kernels import kernel_named
from repro.machine import ALL_TARGETS
from repro.vectorizer import O3_CONFIG, SNSLP_CONFIG


def main() -> None:
    kernel = kernel_named("milc-su3-cmul")
    print(f"kernel: {kernel.name} ({kernel.pattern})\n")
    print(
        f"{'target':14s} {'O3 cycles':>12s} {'SN-SLP cycles':>14s} "
        f"{'speedup':>8s} {'graphs vectorized':>18s}"
    )
    for target in ALL_TARGETS:
        scalar = run_kernel_config(kernel, O3_CONFIG, target)
        vector = run_kernel_config(kernel, SNSLP_CONFIG, target)
        print(
            f"{target.name:14s} {scalar.cycles:12.1f} {vector.cycles:14.1f} "
            f"{scalar.cycles / vector.cycles:8.2f} "
            f"{vector.vectorized_graphs:18d}"
        )
    print()
    print(
        "Shapes to notice: the scalar target cannot vectorize (speedup 1.0);\n"
        "the SSE4-like target still wins but with narrower vectors; the\n"
        "no-addsub target pays blend penalties on alternating trunk nodes."
    )


if __name__ == "__main__":
    main()
