"""Horizontal reductions, including the Super-Node's inverse-element twist.

Three reduction chains, written in the mini-C kernel language:

* a pure dot product — every configuration with ``-slp-vectorize-hor``
  support vectorizes it (wide loads, wide multiply, shuffle ladder);
* a *signed* accumulation (two subtracted energy terms) — only SN-SLP may
  vectorize it: the '+' and '-' leaves split into two vector accumulators
  by APO and subtract at the end;
* a running maximum via ``fmax`` — min/max reduction support.
"""

import random

from repro.frontend import compile_source
from repro.machine import DEFAULT_TARGET
from repro.sim import simulate
from repro.vectorizer import ALL_CONFIGS, compile_module

SOURCE = """
double X[512]; double W[512]; double E[512];
double DOT[512]; double ACC[512]; double PEAK[512];

kernel dot(n) {
  for (i = 0; i < n; i += 1) {
    DOT[i] = X[i+0]*W[i+0] + X[i+1]*W[i+1] + X[i+2]*W[i+2] + X[i+3]*W[i+3];
  }
}

kernel signed_acc(n) {
  for (i = 0; i < n; i += 1) {
    ACC[i] = X[i+0]*W[i+0] + X[i+1]*W[i+1] - E[i+0]
           + X[i+2]*W[i+2] + X[i+3]*W[i+3] - E[i+1];
  }
}

kernel peak(n) {
  for (i = 0; i < n; i += 1) {
    PEAK[i] = fmax(fmax(fmax(fmax(fmax(fmax(fmax(
                X[i+0], X[i+1]), X[i+2]), X[i+3]),
                X[i+4]), X[i+5]), X[i+6]), X[i+7]);
  }
}
"""


def main() -> None:
    module = compile_source(SOURCE)
    rng = random.Random(31)
    inputs = {
        name: [rng.uniform(-2.0, 2.0) for _ in range(512)]
        for name in ("X", "W", "E")
    }

    for kernel in ("dot", "signed_acc", "peak"):
        print(f"=== kernel {kernel} ===")
        baseline = None
        for config in ALL_CONFIGS:
            compiled = compile_module(module, config, DEFAULT_TARGET)
            result = simulate(
                compiled.module, kernel, DEFAULT_TARGET, [400], inputs=inputs
            )
            if baseline is None:
                baseline = result
            reductions = [
                graph
                for report in [compiled.report]
                for graph in report.all_graphs()
                if graph.kind in ("reduction", "minmax-reduction")
                and graph.function == kernel
                and graph.vectorized
            ]
            print(
                f"  {config.name:8s} cycles={result.cycles:9.1f} "
                f"speedup={baseline.cycles / result.cycles:5.2f} "
                f"reductions vectorized={len(reductions)}"
            )
        print()
    print(
        "Shapes: `dot` vectorizes under SLP/LSLP/SN-SLP alike; `signed_acc`\n"
        "needs SN-SLP's APO-partitioned accumulators (the subtracted energy\n"
        "terms interrupt the commutative chain); `peak` shows min/max\n"
        "reduction support (8-wide running maximum)."
    )


if __name__ == "__main__":
    main()
