"""Walk through the paper's Figure 2: leaf reordering across a Super-Node.

The kernel (written in the mini-C kernel language, then compiled through
the full frontend) is::

    A[i+0] = B[i+0] - C[i+0] + D[i+0];
    A[i+1] = D[i+1] - C[i+1] + B[i+1];

Lane 1 has B and D exchanged.  Plain SLP and LSLP build load groups that
mix B with D — non-adjacent, so two gather nodes push the graph cost to
exactly 0 (not profitable, Fig. 2c).  SN-SLP forms the Super-Node over the
add/sub chain, sees that both leaves carry a '+' APO, swaps them legally,
and every group becomes a consecutive load: cost -6 (Fig. 2e).
"""

import random

from repro.frontend import compile_source
from repro.ir import print_module
from repro.machine import DEFAULT_TARGET
from repro.sim import simulate
from repro.vectorizer import LSLP_CONFIG, O3_CONFIG, SNSLP_CONFIG, compile_module

SOURCE = """
long A[1024]; long B[1024]; long C[1024]; long D[1024];

kernel fig2(n) {
  for (i = 0; i < n; i += 2) {
    A[i+0] = B[i+0] - C[i+0] + D[i+0];
    A[i+1] = D[i+1] - C[i+1] + B[i+1];
  }
}
"""


def main() -> None:
    module = compile_source(SOURCE)
    print("=== kernel source ===")
    print(SOURCE)

    rng = random.Random(2)
    inputs = {name: [rng.randint(-100, 100) for _ in range(1024)] for name in "ABCD"}

    baseline = None
    for config in (O3_CONFIG, LSLP_CONFIG, SNSLP_CONFIG):
        compiled = compile_module(module, config, DEFAULT_TARGET)
        result = simulate(
            compiled.module, "fig2", DEFAULT_TARGET, [512], inputs=inputs
        )
        if baseline is None:
            baseline = result
        assert result.globals_after["A"] == baseline.globals_after["A"]
        print(f"=== {config.name} ===")
        for graph in compiled.report.all_graphs():
            print(graph.dump)
            verdict = "vectorized" if graph.vectorized else "NOT profitable"
            print(f"  -> cost {graph.cost:+.1f}: {verdict}")
        print(
            f"  simulated cycles: {result.cycles:.1f} "
            f"(speedup over O3: {baseline.cycles / result.cycles:.2f}x)"
        )
        print()

    print("=== SN-SLP output IR (loop body now uses <2 x i64> ops) ===")
    compiled = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
    print(print_module(compiled.module))


if __name__ == "__main__":
    main()
