"""Walk through the paper's Figure 3: trunk movement enabling leaf moves.

The kernel::

    A[i+0] = B[i+0] - C[i+0] + D[i+0];    // ((B - C) + D)
    A[i+1] = B[i+1] + D[i+1] - C[i+1];    // ((B + D) - C)

Lane 1's only '-'-APO leaf is C, and the root operand slot carries the
'-' APO, so no leaf-only reordering can line C up with Lane 0 (where C
sits one level deeper).  SN-SLP swaps Lane 1's add and sub trunks — legal
because both positions carry a '+' APO — which relocates the '-' slot and
lets every leaf match Lane 0.  This example drives the Super-Node API
directly so you can watch the lane expressions morph.
"""

from repro.ir import (
    I64,
    VOID,
    Function,
    IRBuilder,
    Module,
    verify_module,
)
from repro.vectorizer import LookAheadScorer, SuperNode
from repro.vectorizer.supernode import apo_str


def build_module():
    module = Module("fig3")
    for name in "ABCD":
        module.add_global(name, I64, 64)
    function = Function("kernel", [("i", I64)], VOID)
    module.add_function(function)
    builder = IRBuilder(function.add_block("entry"))
    i = function.arguments[0]

    def load(name, off):
        idx = builder.add(i, builder.const_i64(off)) if off else i
        return builder.load(
            builder.gep(module.global_named(name), idx), name=f"{name}{off}"
        )

    # Lane 0: (B - C) + D
    lane0 = builder.add(builder.sub(load("B", 0), load("C", 0)), load("D", 0))
    builder.store(lane0, builder.gep(module.global_named("A"), i))
    # Lane 1: (B + D) - C
    lane1 = builder.sub(builder.add(load("B", 1), load("D", 1)), load("C", 1))
    idx1 = builder.add(i, builder.const_i64(1))
    builder.store(lane1, builder.gep(module.global_named("A"), idx1))
    builder.ret()
    verify_module(module)
    return module, (lane0, lane1)


def describe(node: SuperNode, title: str) -> None:
    print(title)
    for lane, chain in enumerate(node.chains):
        slots = chain.slots()
        layout = ", ".join(
            f"{apo_str(chain.slot_apo(slot))}{chain.leaf_at(slot).value.name}"
            for slot in slots
        )
        print(f"  lane {lane}: {chain!r:40s} slots (root-first): [{layout}]")
    print()


def main() -> None:
    module, roots = build_module()
    node = SuperNode.build(
        roots, allow_inverse=True, allow_trunk_swaps=True, fast_math=True
    )
    assert node is not None
    print(
        f"Super-Node formed: {node.num_lanes} lanes x {node.size()} trunks, "
        f"family {node.chains[0].family}\n"
    )
    describe(node, "before reordering (lane 1's C is stuck at the root slot):")
    node.reorder_leaves_and_trunks(LookAheadScorer())
    describe(node, "after reorderLeavesAndTrunks (trunks swapped, leaves aligned):")
    print(
        "Both lanes now read [D, B, C] slot-for-slot with matching APOs —\n"
        "fully isomorphic, exactly Figure 3(d) of the paper.  The regular\n"
        "bottom-up SLP bundling that follows vectorizes every group."
    )


if __name__ == "__main__":
    main()
