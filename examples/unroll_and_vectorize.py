"""Unroll a one-element-per-iteration loop, then SLP-vectorize it.

The paper's kernels are manually unrolled (``A[i+0]``, ``A[i+1]``, ...)
because SLP only sees straight-line code.  For sources written one element
per iteration, the repro provides the missing -O3 ingredient: a loop
unroller whose output is exactly the lane-per-offset shape the SLP seeds
look for.

An interesting observation this example surfaces: *compiler-unrolled*
lanes are perfectly isomorphic copies of each other, so plain SLP already
vectorizes them — the Super-Node's leaf/trunk reordering buys nothing.
SN-SLP matters for code that humans (or code generators like milc's su3
macros) wrote with per-lane algebraic variations.  That is why the paper
finds its wins in hand-written benchmark code rather than in simple loops.
"""

import random

from repro.frontend import compile_source
from repro.machine import DEFAULT_TARGET
from repro.sim import simulate
from repro.vectorizer import ALL_CONFIGS, O3_CONFIG, compile_module

SOURCE = """
long A[1024]; long B[1024]; long C[1024]; long D[1024];

kernel saxpyish(n) {
  for (i = 0; i < n; i += 1) {
    A[i] = B[i] - C[i] + D[i];
  }
}
"""


def main() -> None:
    module = compile_source(SOURCE)
    rng = random.Random(0)
    inputs = {
        name: [rng.randint(-100, 100) for _ in range(1024)] for name in "BCD"
    }
    n = 1000  # deliberately not a multiple of 4: exercises the remainder loop

    baseline = simulate(
        compile_module(module, O3_CONFIG, DEFAULT_TARGET).module,
        "saxpyish", DEFAULT_TARGET, [n], inputs=inputs,
    )

    print(f"{'config':8s} {'unroll':>6s} {'cycles':>10s} {'speedup':>8s} {'vectorized':>11s}")
    for unroll in (0, 4):
        for config in ALL_CONFIGS:
            compiled = compile_module(
                module, config, DEFAULT_TARGET, unroll_factor=unroll
            )
            result = simulate(
                compiled.module, "saxpyish", DEFAULT_TARGET, [n], inputs=inputs
            )
            assert result.globals_after["A"] == baseline.globals_after["A"]
            print(
                f"{config.name:8s} {unroll:6d} {result.cycles:10.1f} "
                f"{baseline.cycles / result.cycles:8.2f} "
                f"{len(compiled.report.vectorized_graphs()):11d}"
            )
    print()
    print(
        "Without unrolling nothing vectorizes (no adjacent stores in the\n"
        "straight-line body); with unroll-by-4 every SLP flavour gets ~3x.\n"
        "Remainder iterations (n % 4) run in the original scalar loop."
    )


if __name__ == "__main__":
    main()
