"""Regenerate the paper's entire evaluation in one command.

Convenience wrapper around the harness library: prints Table I and every
figure's data (5 through 11) to stdout.  The `benchmarks/` pytest suite is
the canonical, asserted version of the same content; this script is for a
quick look without pytest.

Run time: a couple of minutes (every kernel compiles under three
configurations and executes on the simulator; Figure 11 repeats each
compilation 10 times per the paper's protocol).
"""

import time

from repro.bench import (
    fig5_kernel_speedups,
    fig6_aggregate_node_size,
    fig7_average_node_size,
    fig8_full_benchmark_speedups,
    fig9_aggregate_node_size_full,
    fig10_average_node_size_full,
    fig11_compile_time,
    format_rows,
    format_table1,
    table1_with_activation,
)
from repro.bench.ascii import render_bar_chart


def _section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    start = time.perf_counter()

    _section("Table I — kernel inventory with SN-SLP activation")
    print(format_table1(table1_with_activation()))

    _section("Figure 5 — kernel speedup over O3")
    rows = fig5_kernel_speedups()
    print(format_rows(rows, ""))
    print()
    print(render_bar_chart(rows, "kernel", ("LSLP", "SN-SLP")))

    _section("Figure 6 — total aggregate Multi/Super-Node size (kernels)")
    print(format_rows(fig6_aggregate_node_size(), ""))

    _section("Figure 7 — average Multi/Super-Node size (kernels)")
    print(format_rows(fig7_average_node_size(), ""))

    _section("Figure 8 — full-benchmark speedup (composites)")
    print(format_rows(fig8_full_benchmark_speedups(), ""))

    _section("Figure 9 — aggregate node size (full benchmarks)")
    print(format_rows(fig9_aggregate_node_size_full(), ""))

    _section("Figure 10 — average node size (full benchmarks)")
    print(format_rows(fig10_average_node_size_full(), ""))

    _section("Figure 11 — compilation time normalized to O3")
    print(format_rows(fig11_compile_time(), ""))

    elapsed = time.perf_counter() - start
    print()
    print(f"full evaluation regenerated in {elapsed:.1f}s")


if __name__ == "__main__":
    main()
