"""Write your own kernel in the mini-C kernel language and vectorize it.

Demonstrates the whole user-facing flow a downstream adopter would use:

1. write kernel source (a complex-arithmetic update, milc-style);
2. compile it with the frontend (lexer -> parser -> sema -> IR);
3. run the SN-SLP pipeline;
4. execute both versions on the simulator and check the outputs agree;
5. print the vectorized IR.
"""

import math
import random

from repro.frontend import compile_source
from repro.ir import print_module
from repro.machine import DEFAULT_TARGET
from repro.sim import simulate
from repro.vectorizer import O3_CONFIG, SNSLP_CONFIG, compile_module

SOURCE = """
// interleaved complex multiply-add: out[2k] is the real part, out[2k+1]
// the imaginary part.  The imaginary lane orders its terms differently --
// the shape that defeats LSLP but not Super-Node SLP.
double OUT[512];  double AR[512]; double AI[512];
double BR[512];   double BI[512]; double ACC[512];

kernel cmuladd(n) {
  for (i = 0; i < n; i += 2) {
    OUT[i+0] = AR[i+0] * BR[i+0] - AI[i+0] * BI[i+0] + ACC[i+0];
    OUT[i+1] = AR[i+1] * BI[i+1] + ACC[i+1] + AI[i+1] * BR[i+1];
  }
}
"""


def main() -> None:
    module = compile_source(SOURCE)
    rng = random.Random(99)
    inputs = {
        name: [rng.uniform(-2.0, 2.0) for _ in range(512)]
        for name in ("AR", "AI", "BR", "BI", "ACC")
    }

    scalar = compile_module(module, O3_CONFIG, DEFAULT_TARGET)
    vector = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)

    scalar_run = simulate(scalar.module, "cmuladd", DEFAULT_TARGET, [512], inputs=inputs)
    vector_run = simulate(vector.module, "cmuladd", DEFAULT_TARGET, [512], inputs=inputs)

    for x, y in zip(scalar_run.globals_after["OUT"], vector_run.globals_after["OUT"]):
        assert math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-12)

    print("outputs agree (fast-math reassociation within 1e-9)")
    print(f"scalar cycles:     {scalar_run.cycles:12.1f}")
    print(f"vectorized cycles: {vector_run.cycles:12.1f}")
    print(f"speedup:           {scalar_run.cycles / vector_run.cycles:12.2f}x")
    print()
    graphs = vector.report.all_graphs()
    print(f"SLP graphs built: {len(graphs)}, "
          f"vectorized: {sum(g.vectorized for g in graphs)}")
    for graph in graphs:
        print(graph.dump)
    print()
    print("=== vectorized IR ===")
    print(print_module(vector.module))


if __name__ == "__main__":
    main()
