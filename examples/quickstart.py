"""Quickstart: compile one kernel under O3 / LSLP / SN-SLP and compare.

Run with::

    python examples/quickstart.py [kernel-name]

Picks the paper's Figure 3 motivating kernel by default, compiles it under
the three configurations the paper evaluates, executes each variant on the
cycle simulator with identical inputs, and prints speedups plus the SLP
graph that SN-SLP built.
"""

import random
import sys

from repro.bench import run_kernel_matrix, speedup_over
from repro.kernels import all_kernels, kernel_named
from repro.machine import DEFAULT_TARGET
from repro.vectorizer import SNSLP_CONFIG, compile_module


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "motiv-trunk-reorder"
    try:
        kernel = kernel_named(name)
    except KeyError:
        print(f"unknown kernel {name!r}; available:")
        for k in all_kernels():
            print(f"  {k.name:24s} {k.description}")
        raise SystemExit(1)

    print(f"kernel: {kernel.name}")
    print(f"  origin:  {kernel.origin}")
    print(f"  pattern: {kernel.pattern}")
    print(f"  target:  {DEFAULT_TARGET.name}")
    print()

    runs = run_kernel_matrix(kernel, target=DEFAULT_TARGET)
    print(f"{'config':8s} {'cycles':>12s} {'speedup':>8s} {'vectorized':>11s} {'correct':>8s}")
    for config_name in ("O3", "SLP", "LSLP", "SN-SLP"):
        run = runs[config_name]
        print(
            f"{config_name:8s} {run.cycles:12.1f} "
            f"{speedup_over(runs, config_name):8.2f} "
            f"{run.vectorized_graphs:11d} {str(run.correct):>8s}"
        )

    print()
    print("SN-SLP's SLP graph (negative cost = profitable):")
    compiled = compile_module(kernel.build(), SNSLP_CONFIG, DEFAULT_TARGET)
    for graph in compiled.report.all_graphs():
        print(graph.dump)
        for record in graph.supernodes:
            print(
                f"  formed {record.kind}-node: {record.lanes} lanes x "
                f"{record.size} trunks"
                f"{' (contains inverse ops)' if record.contains_inverse else ''}"
                f" — applied {record.leaf_swaps} leaf swap(s), "
                f"{record.trunk_swaps} trunk swap(s)"
            )


if __name__ == "__main__":
    main()
