"""Figure 11 — compilation time normalized to O3.

Paper shape: SN-SLP introduces no significant compile-time overhead over
LSLP (nothing compile-time intensive was added).  This bench reproduces
the protocol (10 runs + 1 warm-up) and additionally uses pytest-benchmark
to time one full compilation per (kernel, config) pair so the harness's
own timing machinery exercises real work.
"""

import pytest

from repro.bench import compile_once_seconds, fig11_compile_time, format_rows
from repro.kernels import all_kernels, kernel_named
from repro.machine import DEFAULT_TARGET
from repro.vectorizer import LSLP_CONFIG, O3_CONFIG, SNSLP_CONFIG
from conftest import bench_jobs, emit


def test_fig11_compile_time(once):
    rows = once(fig11_compile_time, jobs=bench_jobs())
    emit(
        "fig11_compile_time",
        format_rows(rows, "Figure 11: compilation time normalized to O3"),
        rows=rows,
    )
    # SN-SLP must not blow up compile time relative to LSLP: the paper
    # reports no significant change.  Our pipeline is *only* clone + SLP +
    # verify (no other passes diluting the ratio as in clang), and Python
    # timers at the millisecond scale are noisy, so the bound is generous;
    # it still catches algorithmic blow-ups in the reorder search.
    for row in rows:
        bound = max(4.0 * row["LSLP"] + 1.5, 8.0)  # noise-tolerant floor
        assert row["SN-SLP"] <= bound, row["kernel"]


@pytest.mark.parametrize("config", [O3_CONFIG, LSLP_CONFIG, SNSLP_CONFIG], ids=lambda c: c.name)
def test_compile_one_kernel(benchmark, config):
    """pytest-benchmark timing of one full compilation (milc kernel)."""
    kernel = kernel_named("milc-su3-cmul")
    benchmark(compile_once_seconds, kernel, config, DEFAULT_TARGET)
