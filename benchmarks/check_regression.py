#!/usr/bin/env python
"""Speedup regression gate: fresh Figure 5 run vs the committed baseline.

Recomputes the kernel speedups (simulated cycles are deterministic, so any
drift is a code change, not noise) and compares them against
``benchmarks/results/fig5_kernel_speedup.json``.  A kernel whose LSLP or
SN-SLP speedup dropped by more than ``--tolerance`` (default 10%) fails
the check; improvements and new kernels only inform.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --tolerance 0.05
    PYTHONPATH=src python benchmarks/check_regression.py --emit-bench BENCH_pr4.json

``--jobs N`` shards the Figure 5 measurement over N worker processes
(bit-identical data).  ``--emit-bench PATH`` additionally times the suite
serial, through an ephemeral jobs=2 pool, and through a persistent warm
compile service (prime pass + warm passes over a shared result cache),
and writes a perf-baseline JSON: per-kernel speedups, all wall-clock
measurements, the warm-service ``parallel_speedup``, and the sustained
``serve.compiles_per_sec`` figure.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

BASELINE = (
    pathlib.Path(__file__).parent / "results" / "fig5_kernel_speedup.json"
)
CONFIGS = ("LSLP", "SN-SLP")


def load_baseline(path: pathlib.Path) -> dict:
    rows = json.loads(path.read_text())
    return {row["kernel"]: row for row in rows if "kernel" in row}


def emit_bench(
    path: pathlib.Path, fresh: dict, history_db: pathlib.Path = None
) -> None:
    """Write the perf baseline: speedups, wall-clock, and telemetry.

    Simulated cycles are deterministic, so the speedup table is identical
    between the runs; only the wall-clock differs.  All measurements run
    the full (kernel, config) suite through the same worker function.

    Three transports are timed:

    * serial (jobs=1, in-process) — the reference;
    * an ephemeral jobs=2 service per call (the pre-PR-7 semantics:
      spawn cost paid every call, no result cache);
    * a persistent warm service (jobs=2, shared result cache): one prime
      pass populates the cache, then ``WARM_PASSES`` suite passes measure
      the steady state a long-lived ``repro serve`` reaches.  The
      headline ``parallel_speedup`` is serial over warm-pass wall — the
      structural win the service exists for — and ``serve.compiles_per_
      sec`` is the sustained pair throughput across the warm passes.

    The serial run is made under a metrics+tracer-armed session, giving
    exact p50/p90/p99 compile-time percentiles (from the per-run
    ``compile_seconds`` samples, not histogram buckets) and the
    interpreter throughput (total interpreted instructions over the
    tracer's ``simulate`` span wall time).  The parallel run's session
    contributes the ``parallel.*`` overhead counters, so the perf
    baseline records where jobs=2 time goes.  ``history_db`` additionally
    appends the headline numbers to a run-history store for trend gating.
    """
    import tempfile
    import time

    from repro.bench import run_suite_parallel
    from repro.observe.metrics import exact_percentile
    from repro.observe.session import CompilerSession, use_session
    from repro.serve.service import CompileService

    WARM_PASSES = 3

    serial_session = CompilerSession(name="emit-bench-serial")
    serial_session.tracer.enable()
    serial_session.metrics.enable()
    with use_session(serial_session):
        start = time.perf_counter()
        results = run_suite_parallel(jobs=1)
        serial_seconds = time.perf_counter() - start

    parallel_session = CompilerSession(name="emit-bench-parallel")
    parallel_session.metrics.enable()
    with use_session(parallel_session):
        start = time.perf_counter()
        run_suite_parallel(jobs=2)
        parallel_seconds = time.perf_counter() - start

    service_session = CompilerSession(name="emit-bench-service")
    warm_walls = []
    with tempfile.TemporaryDirectory(prefix="repro-emit-cache-") as cache_dir:
        with CompileService(
            workers=2, cache_dir=cache_dir,
            session=service_session, name="emit-bench",
        ) as service:
            start = time.perf_counter()
            run_suite_parallel(jobs=2, service=service)  # prime the cache
            prime_seconds = time.perf_counter() - start
            for _ in range(WARM_PASSES):
                start = time.perf_counter()
                run_suite_parallel(jobs=2, service=service)
                warm_walls.append(time.perf_counter() - start)
            # per-request latency percentiles over everything the warm
            # service handled (prime + warm passes), from the same
            # recent-window deques the wire `stats` op reports
            latency = service.describe()
    warm_seconds = sum(warm_walls) / len(warm_walls)
    service_stats = service_session.stats.snapshot()
    pairs_per_pass = sum(len(matrix) for matrix in results.values())
    compiles_per_sec = pairs_per_pass * len(warm_walls) / sum(warm_walls)

    runs = [run for matrix in results.values() for run in matrix.values()]
    compile_samples = sorted(run.compile_seconds for run in runs)
    total_instructions = sum(run.instructions for run in runs)
    simulate_seconds = serial_session.tracer.total_ns("simulate") / 1e9
    instructions_per_sec = (
        total_instructions / simulate_seconds if simulate_seconds else 0.0
    )
    overhead = parallel_session.stats.snapshot()

    # Engine-only throughput, scalar vs batched, over the same suite —
    # the PR 9 headline.  interpreter_throughput times interp.run alone
    # (the sim.instructions_per_sec gauge's definition), so the ratio is
    # the planned engine's speedup with shared harness work excluded.
    from repro.bench.timing import interpreter_throughput

    engine_rates = {
        name: interpreter_throughput(engine=name, repeats=3)
        for name in ("scalar", "batched")
    }
    scalar_rate = engine_rates["scalar"]["instructions_per_sec"]
    batched_rate = engine_rates["batched"]["instructions_per_sec"]
    engine_speedup = batched_rate / scalar_rate if scalar_rate else 0.0
    plan_cache = {
        key: sum(run.counters.get(key, 0.0) for run in runs)
        for key in ("interp.plan_cache.hits", "interp.plan_cache.misses")
    }

    document = {
        "figure": "fig5_kernel_speedups",
        "speedups": {
            kernel: {
                config: float(row[config])
                for config in CONFIGS
                if config in row
            }
            for kernel, row in sorted(fresh.items())
        },
        "suite_wall_seconds": {
            "serial": round(serial_seconds, 3),
            "parallel_jobs2": round(parallel_seconds, 3),
            "service_warm_jobs2": round(warm_seconds, 3),
        },
        # the gated headline: serial over a *warm* service pass
        "parallel_speedup": round(serial_seconds / warm_seconds, 3),
        "parallel_speedup_cold": round(serial_seconds / parallel_seconds, 3),
        "service": {
            "workers": 2,
            "prime_seconds": round(prime_seconds, 3),
            "warm_pass_seconds": [round(wall, 3) for wall in warm_walls],
            "compiles_per_sec": round(compiles_per_sec, 2),
            "pairs_per_pass": pairs_per_pass,
            "task_cache_hits": service_stats.get("serve.task_cache.hits", 0),
            "task_cache_misses": service_stats.get("serve.task_cache.misses", 0),
            "cross_worker_hits": service_stats.get("cache.cross_worker_hits", 0),
            "queue_seconds": latency["queue_seconds"],
            "turnaround_seconds": latency["turnaround_seconds"],
        },
        "compile_seconds": {
            "count": len(compile_samples),
            "p50": round(exact_percentile(compile_samples, 50), 6),
            "p90": round(exact_percentile(compile_samples, 90), 6),
            "p99": round(exact_percentile(compile_samples, 99), 6),
            "sum": round(sum(compile_samples), 6),
        },
        "interpreter": {
            "instructions": total_instructions,
            "simulate_seconds": round(simulate_seconds, 3),
            "instructions_per_sec": round(instructions_per_sec),
        },
        "engines": {
            "scalar_instructions_per_sec": round(scalar_rate),
            "batched_instructions_per_sec": round(batched_rate),
            "engine_speedup": round(engine_speedup, 2),
            "plan_cache": plan_cache,
        },
        "parallel_overhead_seconds": {
            "overhead": round(overhead.get("parallel.overhead_seconds", 0.0), 3),
            # 6 decimals: marshal is ~1e-4s per suite and rounding to 3
            # reported a flat 0.0 in BENCH_pr6 (the satellite this fixes)
            "marshal": round(overhead.get("parallel.marshal_seconds", 0.0), 6),
            "spawn": round(overhead.get("parallel.spawn_seconds", 0.0), 3),
            "tasks": overhead.get("parallel.tasks", 0),
        },
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {path}: suite serial {serial_seconds:.2f}s, "
        f"parallel(jobs=2) {parallel_seconds:.2f}s "
        f"({serial_seconds / parallel_seconds:.2f}x), "
        f"warm service {warm_seconds:.3f}s "
        f"({serial_seconds / warm_seconds:.2f}x, "
        f"{compiles_per_sec:,.0f} pairs/s), "
        f"compile p50 {document['compile_seconds']['p50'] * 1e3:.2f}ms / "
        f"p99 {document['compile_seconds']['p99'] * 1e3:.2f}ms, "
        f"interp {instructions_per_sec:,.0f} insns/s, "
        f"engines scalar {scalar_rate:,.0f} vs batched {batched_rate:,.0f} "
        f"insns/s ({engine_speedup:.1f}x)"
    )

    if history_db is not None:
        from repro.observe.history import RunHistory

        samples = {
            "emit.compile.seconds.p50": document["compile_seconds"]["p50"],
            "emit.compile.seconds.p99": document["compile_seconds"]["p99"],
            "emit.interp.instructions_per_sec": instructions_per_sec,
            "emit.interp.engine_speedup": engine_speedup,
            "sim.instructions_per_sec": batched_rate,
            "emit.suite.serial_seconds": serial_seconds,
            "emit.parallel.overhead_seconds": overhead.get(
                "parallel.overhead_seconds", 0.0
            ),
            "serve.compiles_per_sec": compiles_per_sec,
            "serve.queue_seconds.p99": latency["queue_seconds"]["p99"],
            "serve.turnaround_seconds.p99": latency["turnaround_seconds"]["p99"],
        }
        with RunHistory(str(history_db)) as history:
            run_id = history.record(
                kind="emit-bench",
                metrics=samples,
                payload={"bench": str(path)},
                config={"command": "check_regression"},
            )
        print(f"recorded run #{run_id} ({len(samples)} metric(s)) in {history_db}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=BASELINE,
        help="committed fig5 JSON to compare against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="maximum allowed fractional speedup drop (default 0.10)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the fresh Figure 5 run (default 1)",
    )
    parser.add_argument(
        "--emit-bench",
        type=pathlib.Path,
        metavar="PATH",
        help="also time the suite serial vs parallel (jobs=2) vs a warm "
        "compile service and write a perf-baseline JSON to PATH",
    )
    parser.add_argument(
        "--history-db",
        type=pathlib.Path,
        metavar="PATH",
        help="with --emit-bench: also append the headline numbers to this "
        "run-history database (see `repro history`)",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"FAIL: baseline not found: {args.baseline}")
        return 2
    baseline = load_baseline(args.baseline)

    from repro.bench import fig5_kernel_speedups

    fresh = {
        row["kernel"]: row
        for row in fig5_kernel_speedups(jobs=args.jobs)
        if "kernel" in row
    }

    if args.emit_bench is not None:
        emit_bench(args.emit_bench, fresh, history_db=args.history_db)

    failures = []
    for kernel, old in sorted(baseline.items()):
        new = fresh.get(kernel)
        if new is None:
            print(f"WARN: kernel {kernel!r} in baseline but not in fresh run")
            continue
        for config in CONFIGS:
            if config not in old:
                continue
            was, now = float(old[config]), float(new[config])
            drop = (was - now) / was if was else 0.0
            marker = "ok"
            if drop > args.tolerance:
                marker = "REGRESSION"
                failures.append((kernel, config, was, now))
            print(
                f"{marker:10s} {kernel:24s} {config:7s} "
                f"baseline {was:6.3f}  now {now:6.3f}  ({-drop:+.1%})"
            )
    for kernel in sorted(set(fresh) - set(baseline)):
        print(f"NEW        {kernel:24s} (not in baseline)")

    if failures:
        print(
            f"\nFAIL: {len(failures)} speedup(s) regressed beyond "
            f"{args.tolerance:.0%}:"
        )
        for kernel, config, was, now in failures:
            print(f"  {kernel} [{config}]: {was:.3f} -> {now:.3f}")
        return 1
    print(f"\nOK: all speedups within {args.tolerance:.0%} of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
