#!/usr/bin/env python
"""Speedup regression gate: fresh Figure 5 run vs the committed baseline.

Recomputes the kernel speedups (simulated cycles are deterministic, so any
drift is a code change, not noise) and compares them against
``benchmarks/results/fig5_kernel_speedup.json``.  A kernel whose LSLP or
SN-SLP speedup dropped by more than ``--tolerance`` (default 10%) fails
the check; improvements and new kernels only inform.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --tolerance 0.05
    PYTHONPATH=src python benchmarks/check_regression.py --emit-bench BENCH_pr4.json

``--jobs N`` shards the Figure 5 measurement over N worker processes
(bit-identical data).  ``--emit-bench PATH`` additionally times the suite
serial vs parallel (jobs=2) and writes a perf-baseline JSON: per-kernel
speedups plus both wall-clock measurements and their ratio.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

BASELINE = (
    pathlib.Path(__file__).parent / "results" / "fig5_kernel_speedup.json"
)
CONFIGS = ("LSLP", "SN-SLP")


def load_baseline(path: pathlib.Path) -> dict:
    rows = json.loads(path.read_text())
    return {row["kernel"]: row for row in rows if "kernel" in row}


def emit_bench(path: pathlib.Path, fresh: dict) -> None:
    """Write the perf baseline: speedups + serial vs parallel wall-clock.

    Simulated cycles are deterministic, so the speedup table is identical
    between the two runs; only the wall-clock differs.  Both measurements
    run the full (kernel, config) suite through the same worker function,
    so the ratio isolates the process-pool win.
    """
    import time

    from repro.bench import run_suite_parallel

    start = time.perf_counter()
    run_suite_parallel(jobs=1)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    run_suite_parallel(jobs=2)
    parallel_seconds = time.perf_counter() - start
    document = {
        "figure": "fig5_kernel_speedups",
        "speedups": {
            kernel: {
                config: float(row[config])
                for config in CONFIGS
                if config in row
            }
            for kernel, row in sorted(fresh.items())
        },
        "suite_wall_seconds": {
            "serial": round(serial_seconds, 3),
            "parallel_jobs2": round(parallel_seconds, 3),
        },
        "parallel_speedup": round(serial_seconds / parallel_seconds, 3),
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {path}: suite serial {serial_seconds:.2f}s, "
        f"parallel(jobs=2) {parallel_seconds:.2f}s "
        f"({serial_seconds / parallel_seconds:.2f}x)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=BASELINE,
        help="committed fig5 JSON to compare against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="maximum allowed fractional speedup drop (default 0.10)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the fresh Figure 5 run (default 1)",
    )
    parser.add_argument(
        "--emit-bench",
        type=pathlib.Path,
        metavar="PATH",
        help="also time the suite serial vs parallel (jobs=2) and write a "
        "perf-baseline JSON to PATH",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"FAIL: baseline not found: {args.baseline}")
        return 2
    baseline = load_baseline(args.baseline)

    from repro.bench import fig5_kernel_speedups

    fresh = {
        row["kernel"]: row
        for row in fig5_kernel_speedups(jobs=args.jobs)
        if "kernel" in row
    }

    if args.emit_bench is not None:
        emit_bench(args.emit_bench, fresh)

    failures = []
    for kernel, old in sorted(baseline.items()):
        new = fresh.get(kernel)
        if new is None:
            print(f"WARN: kernel {kernel!r} in baseline but not in fresh run")
            continue
        for config in CONFIGS:
            if config not in old:
                continue
            was, now = float(old[config]), float(new[config])
            drop = (was - now) / was if was else 0.0
            marker = "ok"
            if drop > args.tolerance:
                marker = "REGRESSION"
                failures.append((kernel, config, was, now))
            print(
                f"{marker:10s} {kernel:24s} {config:7s} "
                f"baseline {was:6.3f}  now {now:6.3f}  ({-drop:+.1%})"
            )
    for kernel in sorted(set(fresh) - set(baseline)):
        print(f"NEW        {kernel:24s} (not in baseline)")

    if failures:
        print(
            f"\nFAIL: {len(failures)} speedup(s) regressed beyond "
            f"{args.tolerance:.0%}:"
        )
        for kernel, config, was, now in failures:
            print(f"  {kernel} [{config}]: {was:.3f} -> {now:.3f}")
        return 1
    print(f"\nOK: all speedups within {args.tolerance:.0%} of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
