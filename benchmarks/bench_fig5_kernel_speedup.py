"""Figure 5 — kernel speedup over O3 (LSLP vs SN-SLP).

Paper shape to reproduce: LSLP averages about the same as O3 on the
SN-targeted kernels (its Multi-Node cannot cross the inverse operators),
while SN-SLP shows solid speedups; the motivating-example kernels show
the largest gains because they are pure vectorizable loops.
"""

from repro.bench import fig5_kernel_speedups, format_rows
from repro.bench.ascii import render_figure
from conftest import bench_jobs, emit


def test_fig5_kernel_speedups(once):
    rows = once(fig5_kernel_speedups, jobs=bench_jobs())
    emit(
        "fig5_kernel_speedup",
        render_figure(
            rows,
            "Figure 5: kernel speedup normalized to O3",
            label_column="kernel",
            value_columns=("LSLP", "SN-SLP"),
        ),
        rows=rows,
    )
    by_kernel = {r["kernel"]: r for r in rows}

    # Shape assertions from the paper's Section V-A:
    # (1) SN-SLP improves upon LSLP on the inverse-operator kernels.
    for name in (
        "motiv-leaf-reorder",
        "motiv-trunk-reorder",
        "milc-su3-cmul",
        "milc-field-norm",
        "namd-force-accum",
        "dealii-cell-assembly",
        "soplex-ratio-update",
        "povray-shade-blend",
        "sphinx-gauss-score",
    ):
        assert by_kernel[name]["SN-SLP"] > by_kernel[name]["LSLP"], name
    # (2) LSLP alone is ~O3 on those kernels (within a few percent).
    assert by_kernel["motiv-trunk-reorder"]["LSLP"] == 1.0
    # (3) motivating examples are simple loops -> significant speedup.
    assert by_kernel["motiv-leaf-reorder"]["SN-SLP"] > 1.5
    # (4) overall: SN-SLP geomean strictly above LSLP geomean.
    assert by_kernel["geomean"]["SN-SLP"] > by_kernel["geomean"]["LSLP"]
