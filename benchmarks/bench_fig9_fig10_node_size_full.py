"""Figures 9 and 10 — node-size statistics over the full benchmarks.

Paper shape: SN-SLP creates more nodes (larger aggregate) across the full
benchmarks, but its *average* node size stays near the common small sizes
(~2.5) because frequent activations pull the average toward the minimum
legal node size.
"""

from repro.bench import (
    fig9_aggregate_node_size_full,
    fig10_average_node_size_full,
    format_rows,
)
from conftest import emit


def test_fig9_aggregate_node_size_full(once):
    rows = once(fig9_aggregate_node_size_full)
    emit(
        "fig9_aggregate_node_size_full",
        format_rows(rows, "Figure 9: aggregate node size (full benchmarks)"),
        rows=rows,
    )
    total = rows[-1]
    assert total["SN-SLP"] > total["LSLP"]


def test_fig10_average_node_size_full(once):
    rows = once(fig10_average_node_size_full)
    emit(
        "fig10_average_node_size_full",
        format_rows(rows, "Figure 10: average node size (full benchmarks)"),
        rows=rows,
    )
    sizes = [row["SN-SLP"] for row in rows if row["SN-SLP"]]
    for size in sizes:
        assert 2.0 <= size <= 4.5
    # the paper's cross-benchmark average sits near 2.5: frequent small
    # activations pull it toward the minimum legal node size
    assert 2.0 <= sum(sizes) / len(sizes) <= 3.0
