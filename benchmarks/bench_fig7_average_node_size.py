"""Figure 7 — average Multi-/Super-Node size (kernels).

Paper shape: the average node is ~2.2 instructions deep — 2 is the
minimum legal node size and short chains are far more likely to be
isomorphic than long ones.
"""

from repro.bench import fig7_average_node_size, format_rows
from conftest import emit


def test_fig7_average_node_size(once):
    rows = once(fig7_average_node_size)
    emit(
        "fig7_average_node_size",
        format_rows(rows, "Figure 7: average Multi/Super-Node size (kernels)"),
        rows=rows,
    )
    average = rows[-1]
    assert average["kernel"] == "average"
    assert 2.0 <= average["SN-SLP"] <= 3.0
