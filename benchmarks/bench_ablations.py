"""Ablation benches for the design choices DESIGN.md calls out.

* trunk reordering on/off — without Section IV-C3 the Fig-3-style kernels
  degrade to LSLP behaviour;
* look-ahead depth — depth 0 loses the operand-matching signal;
* operand-index visit order — the paper visits root-most first;
* native addsub support — alternating float lanes pay a blend penalty on
  targets without the x86 addsub family.
"""

import dataclasses

import pytest

from repro.bench import format_rows, run_kernel_config, run_kernel_matrix, speedup_over
from repro.kernels import all_kernels, kernel_named
from repro.machine import DEFAULT_TARGET, NO_ADDSUB, SKYLAKE_LIKE
from repro.sim import simulate
from repro.vectorizer import SNSLP_CONFIG, compile_module
from conftest import emit

#: kernels whose vectorization specifically needs trunk movement
TRUNK_KERNELS = (
    "motiv-trunk-reorder",
    "namd-force-accum",
    "povray-shade-blend",
    "sphinx-gauss-score",
)

NO_TRUNK_CONFIG = dataclasses.replace(
    SNSLP_CONFIG, name="SN-SLP-no-trunk", enable_trunk_swaps=False
)
REVERSED_VISIT_CONFIG = dataclasses.replace(
    SNSLP_CONFIG, name="SN-SLP-leaf-first", visit_root_first=False
)


def test_ablation_trunk_reordering(once):
    def run():
        rows = []
        for name in TRUNK_KERNELS:
            kernel = kernel_named(name)
            full = run_kernel_matrix(kernel, (SNSLP_CONFIG, NO_TRUNK_CONFIG))
            rows.append(
                {
                    "kernel": name,
                    "SN-SLP": speedup_over(full, "SN-SLP"),
                    "no-trunk-swaps": speedup_over(full, "SN-SLP-no-trunk"),
                }
            )
        return rows

    rows = once(run)
    emit(
        "ablation_trunk_reordering",
        format_rows(rows, "Ablation: Super-Node trunk reordering"),
        rows=rows,
    )
    # Fig 3's kernel cannot vectorize at all without trunk swaps
    motiv = next(r for r in rows if r["kernel"] == "motiv-trunk-reorder")
    assert motiv["no-trunk-swaps"] == 1.0
    assert motiv["SN-SLP"] > 1.5
    for row in rows:
        assert row["SN-SLP"] >= row["no-trunk-swaps"]


def test_ablation_lookahead_depth(once):
    kernel = kernel_named("milc-su3-cmul")

    def run():
        rows = []
        for depth in (0, 1, 2, 3):
            config = dataclasses.replace(
                SNSLP_CONFIG, name=f"SN-SLP-d{depth}", lookahead_depth=depth
            )
            runs = run_kernel_matrix(kernel, (config,))
            rows.append(
                {
                    "lookahead depth": depth,
                    "speedup over O3": speedup_over(runs, config.name),
                    "vectorized graphs": runs[config.name].vectorized_graphs,
                }
            )
        return rows

    rows = once(run)
    emit(
        "ablation_lookahead_depth",
        format_rows(rows, "Ablation: look-ahead scoring depth (milc-su3-cmul)"),
        rows=rows,
    )
    # deeper look-ahead must never hurt on this kernel, and depth>=1 is
    # needed to distinguish the product leaves
    best = max(r["speedup over O3"] for r in rows)
    assert rows[-1]["speedup over O3"] == pytest.approx(best)


def test_ablation_visit_order(once):
    def run():
        rows = []
        for kernel in all_kernels():
            runs = run_kernel_matrix(kernel, (SNSLP_CONFIG, REVERSED_VISIT_CONFIG))
            rows.append(
                {
                    "kernel": kernel.name,
                    "root-first": speedup_over(runs, "SN-SLP"),
                    "leaf-first": speedup_over(runs, "SN-SLP-leaf-first"),
                    "correct": all(r.correct for r in runs.values()),
                }
            )
        return rows

    rows = once(run)
    emit(
        "ablation_visit_order",
        format_rows(rows, "Ablation: operand-index visit order (Listing 2, line 5)"),
        rows=rows,
    )
    # both orders must stay correct; root-first must be at least as good
    # in aggregate (the paper's stated intuition)
    assert all(r["correct"] for r in rows)
    total_root = sum(r["root-first"] for r in rows)
    total_leaf = sum(r["leaf-first"] for r in rows)
    assert total_root >= total_leaf - 1e-9


def test_ablation_addsub_support(once):
    """Alternating float lanes on a no-addsub target pay a blend penalty."""
    from repro.ir import F64, I64, VOID, Function, IRBuilder, Module, verify_module

    def build():
        module = Module("alt")
        for name in "ABC":
            module.add_global(name, F64, 64)
        function = Function("kernel", [("i", I64)], VOID, fast_math=True)
        module.add_function(function)
        b = IRBuilder(function.add_block("entry"))
        i = function.arguments[0]
        for lane, op in enumerate(("fadd", "fsub")):
            idx = b.add(i, b.const_i64(lane)) if lane else i
            lhs = b.load(b.gep(module.global_named("B"), idx))
            rhs = b.load(b.gep(module.global_named("C"), idx))
            b.store(getattr(b, op)(lhs, rhs), b.gep(module.global_named("A"), idx))
        b.ret()
        verify_module(module)
        return module

    def run():
        rows = []
        for target in (SKYLAKE_LIKE, NO_ADDSUB):
            compiled = compile_module(build(), SNSLP_CONFIG, target)
            sim = simulate(compiled.module, "kernel", target, [0])
            rows.append(
                {
                    "target": target.name,
                    "vectorized": len(compiled.report.vectorized_graphs()),
                    "cycles": sim.cycles,
                }
            )
        return rows

    rows = once(run)
    emit(
        "ablation_addsub",
        format_rows(rows, "Ablation: native addsub support (alternating fadd/fsub lanes)"),
        rows=rows,
    )
    skylake, no_addsub = rows
    assert skylake["vectorized"] == 1
    # both may vectorize, but the no-addsub target must execute the
    # alternating vector op strictly slower
    assert no_addsub["cycles"] > skylake["cycles"]
