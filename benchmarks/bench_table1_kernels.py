"""Table I — kernel inventory with measured SN-SLP activation.

Regenerates the paper's Table I equivalent: every kernel in the suite,
its origin benchmark, the Super-Node feature it exercises, and whether a
Super-Node actually formed/vectorized when compiled under SN-SLP.
"""

from repro.bench import format_table1, table1_with_activation
from conftest import emit


def test_table1(once):
    rows = once(table1_with_activation)
    emit("table1_kernels", format_table1(rows), rows=rows)
    # sanity: every SPEC-derived kernel must actually activate SN-SLP
    spec_rows = [r for r in rows if "SPEC" in r["origin"]]
    assert spec_rows
    assert all(r["supernodes_formed"] >= 1 for r in spec_rows)
