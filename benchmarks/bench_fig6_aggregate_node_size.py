"""Figure 6 — total aggregate Multi-/Super-Node size (kernels).

Paper shape: the Super-Node achieves a much greater aggregate size than
LSLP's Multi-Node, both because individual nodes are larger (they absorb
the inverse operators) and because vectorization succeeds more often.
"""

from repro.bench import fig6_aggregate_node_size, format_rows
from repro.bench.ascii import render_figure
from conftest import emit


def test_fig6_aggregate_node_size(once):
    rows = once(fig6_aggregate_node_size)
    emit(
        "fig6_aggregate_node_size",
        render_figure(
            rows,
            "Figure 6: total aggregate Multi/Super-Node size (kernels)",
            label_column="kernel",
            value_columns=("LSLP", "SN-SLP"),
        ),
        rows=rows,
    )
    total = rows[-1]
    assert total["kernel"] == "total"
    assert total["SN-SLP"] > total["LSLP"]
    # the Super-Node aggregate must dominate clearly, not marginally
    assert total["SN-SLP"] >= 2 * max(total["LSLP"], 1)
