"""Scaling study: Super-Node effectiveness vs chain depth and lane count.

A parameter sweep over generated kernels (``repro.kernels.generator``):
each point is a kernel whose lanes compute the same signed sum with
randomly shuffled per-lane term orders — solvable exactly by Super-Node
reordering.  We measure, per (lanes, terms) grid point:

* SN-SLP speedup over O3 (should grow with lane count, stay positive as
  chains deepen);
* whether LSLP ever catches up (it must not: every kernel contains '-');
* SN-SLP compile time (the reorder search is the only superlinear piece —
  this is the scaling companion to Figure 11).
"""

import math
import time

from repro.kernels.generator import (
    GeneratorSpec,
    generate_inputs,
    generate_kernel,
    sweep_specs,
)
from repro.machine import DEFAULT_TARGET
from repro.sim import simulate
from repro.vectorizer import LSLP_CONFIG, O3_CONFIG, SNSLP_CONFIG, compile_module
from repro.bench import format_rows
from conftest import emit

TRIP = 256


def _measure(spec: GeneratorSpec):
    module = generate_kernel(spec)
    inputs = generate_inputs(spec)
    row = {"lanes": spec.lanes, "terms": spec.terms}
    baseline = None
    for config in (O3_CONFIG, LSLP_CONFIG, SNSLP_CONFIG):
        start = time.perf_counter()
        compiled = compile_module(module, config, DEFAULT_TARGET)
        compile_ms = (time.perf_counter() - start) * 1000
        result = simulate(
            compiled.module, "kernel", DEFAULT_TARGET, [TRIP], inputs=inputs
        )
        if baseline is None:
            baseline = result
        else:
            for got, want in zip(
                result.globals_after["OUT"], baseline.globals_after["OUT"]
            ):
                assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9)
        row[config.name] = baseline.cycles / result.cycles
        if config.name == "SN-SLP":
            row["SN compile ms"] = compile_ms
            row["vectorized"] = len(compiled.report.vectorized_graphs()) > 0
    return row


def test_scaling_sweep(once):
    rows = once(lambda: [_measure(spec) for spec in sweep_specs()])
    emit(
        "scaling_sweep",
        format_rows(rows, "Scaling: SN-SLP vs chain depth (terms) and lanes"),
        rows=rows,
    )
    for row in rows:
        # every grid point: SN-SLP vectorizes and at least matches LSLP
        assert row["vectorized"], row
        assert row["SN-SLP"] > 1.2, row
        assert row["SN-SLP"] >= row["LSLP"] - 1e-9, row
        if row["terms"] >= 3:
            # a real chain with '-' terms: LSLP cannot fully fix it
            # (at best it catches incidental partial alignments)
            assert row["SN-SLP"] > row["LSLP"] + 0.3, row
            assert row["LSLP"] < 1.4, row
    # wider lanes help: compare 4-lane vs 2-lane at equal depth
    by_point = {(row["lanes"], row["terms"]): row["SN-SLP"] for row in rows}
    for terms in (3, 4, 5):
        assert by_point[(4, terms)] > by_point[(2, terms)]
    # compile time stays sane as chains deepen (no exponential blow-up)
    worst = max(row["SN compile ms"] for row in rows)
    assert worst < 500.0
