"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures.  The data
rows are printed to stdout (run with ``-s`` to see them inline) and also
written to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can cite a
stable artifact.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_jobs() -> int:
    """Worker processes for the parallelizable figure benchmarks.

    Defaults to 1 (serial — identical data either way, since simulated
    cycles are deterministic); set ``REPRO_BENCH_JOBS=N`` to shard the
    (kernel, config) measurements over N processes.
    """
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))
    except ValueError:
        return 1


def emit(name: str, text: str, rows=None) -> None:
    """Print a figure/table and persist it under benchmarks/results/.

    When the raw ``rows`` are passed, a machine-readable JSON twin is
    written next to the text table (for downstream plotting).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if rows is not None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(rows, indent=2, default=str) + "\n"
        )
    print()
    print(text)


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once under pytest-benchmark.

    Figure regeneration is deterministic and relatively slow; one round is
    the right trade-off (the *data* is the product, the timing is
    informational).
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
