"""Figure 8 — full-benchmark performance (composite programs).

Paper shape: Super-Node SLP is a generic optimization, not a hot-loop
one, so whole-benchmark effects are small: 433.milc gains ~2% over LSLP
(a very significant end-to-end win for an SLP change) and the other five
activating benchmarks show no statistical difference.
"""

from repro.bench import fig8_full_benchmark_speedups, format_rows
from repro.bench.ascii import render_figure
from conftest import bench_jobs, emit


def test_fig8_full_benchmarks(once):
    rows = once(fig8_full_benchmark_speedups, jobs=bench_jobs())
    emit(
        "fig8_full_benchmarks",
        render_figure(
            rows,
            "Figure 8: full-benchmark speedup (composites)",
            label_column="benchmark",
            value_columns=("LSLP", "SN-SLP"),
        ),
        rows=rows,
    )
    by_name = {r["benchmark"]: r for r in rows}
    milc = by_name["433.milc"]
    # the paper's headline: ~2% for milc over LSLP
    assert 1.015 <= milc["SN-SLP vs LSLP"] <= 1.03
    # the rest: flat (under 1%)
    for name, row in by_name.items():
        if name == "433.milc":
            continue
        assert row["SN-SLP vs LSLP"] < 1.01, name
        assert row["SN-SLP vs LSLP"] >= 1.0, name
