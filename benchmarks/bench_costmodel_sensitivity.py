"""Cost-model sensitivity: the profitability line moves with the target.

The paper's vectorization decisions hinge on the cost model (Figure 1,
steps 4-5): the motivating examples sit exactly on the profitability
boundary under (L)SLP.  This bench perturbs two cost-model knobs and
checks the decisions move the way the model predicts:

* **expensive inserts** (gather lanes cost 3x): Figure 2's (L)SLP graph —
  two gather nodes — goes from exactly 0 to clearly positive, while
  SN-SLP (no gathers after reordering) is unaffected;
* **free divisions** (fdiv as cheap as fmul): the mul/div kernel's SN-SLP
  speedup shrinks (the expensive scalar divisions were a large part of
  the win) but vectorization itself remains profitable.
"""

import dataclasses

from repro.bench import format_rows, run_kernel_config, speedup_over
from repro.kernels import kernel_named
from repro.machine import DEFAULT_TARGET, CostModel, TargetMachine
from repro.ir import Opcode
from repro.vectorizer import LSLP_CONFIG, O3_CONFIG, SNSLP_CONFIG, compile_module
from conftest import emit


def _variant(name: str, **cost_overrides) -> TargetMachine:
    base = DEFAULT_TARGET.cost_model
    scalar_costs = dict(base.scalar_costs)
    scalar_costs.update(cost_overrides.pop("scalar_costs", {}))
    model = dataclasses.replace(
        base, scalar_costs=scalar_costs, **cost_overrides
    )
    return TargetMachine(name=name, isa=DEFAULT_TARGET.isa, cost_model=model)


EXPENSIVE_INSERTS = _variant("expensive-inserts", insert_cost=3.0)
FREE_DIVISION = _variant(
    "free-division",
    scalar_costs={Opcode.FDIV: DEFAULT_TARGET.cost_model.scalar_costs[Opcode.FMUL]},
)


def test_costmodel_sensitivity(once):
    def run():
        rows = []
        fig2 = kernel_named("motiv-leaf-reorder")
        for target in (DEFAULT_TARGET, EXPENSIVE_INSERTS):
            lslp = compile_module(fig2.build(), LSLP_CONFIG, target)
            snslp = compile_module(fig2.build(), SNSLP_CONFIG, target)
            rows.append(
                {
                    "experiment": "fig2 graph cost",
                    "target": target.name,
                    "LSLP": lslp.report.all_graphs()[0].cost,
                    "SN-SLP": snslp.report.all_graphs()[0].cost,
                }
            )
        norm = kernel_named("milc-field-norm")
        for target in (DEFAULT_TARGET, FREE_DIVISION):
            o3 = run_kernel_config(norm, O3_CONFIG, target)
            sn = run_kernel_config(norm, SNSLP_CONFIG, target)
            rows.append(
                {
                    "experiment": "mul/div kernel speedup",
                    "target": target.name,
                    "LSLP": 1.0,
                    "SN-SLP": o3.cycles / sn.cycles,
                }
            )
        return rows

    rows = once(run)
    emit(
        "costmodel_sensitivity",
        format_rows(rows, "Cost-model sensitivity"),
        rows=rows,
    )
    by_key = {(r["experiment"], r["target"]): r for r in rows}
    # expensive inserts push the Fig-2 (L)SLP graph clearly unprofitable...
    assert by_key[("fig2 graph cost", "skylake-like")]["LSLP"] == 0.0
    assert by_key[("fig2 graph cost", "expensive-inserts")]["LSLP"] > 0.0
    # ...while SN-SLP's gather-free graph is untouched
    assert (
        by_key[("fig2 graph cost", "expensive-inserts")]["SN-SLP"]
        == by_key[("fig2 graph cost", "skylake-like")]["SN-SLP"]
    )
    # cheap divisions shrink (but do not kill) the mul/div kernel's win
    default_speed = by_key[("mul/div kernel speedup", "skylake-like")]["SN-SLP"]
    cheap_speed = by_key[("mul/div kernel speedup", "free-division")]["SN-SLP"]
    assert cheap_speed < default_speed
    assert cheap_speed > 1.0
