"""Look-ahead scoring tests (LSLP heuristics)."""

import pytest

from repro.ir import (
    F64,
    I64,
    VOID,
    Constant,
    Function,
    IRBuilder,
    Module,
)
from repro.vectorizer import LookAheadScorer, ScoreTable


def _env():
    module = Module("m")
    for name in "AB":
        module.add_global(name, F64, 64)
    function = Function("f", [("i", I64)], VOID)
    module.add_function(function)
    builder = IRBuilder(function.add_block("entry"))
    i = function.arguments[0]

    def load(name, off):
        idx = builder.add(i, builder.const_i64(off)) if off else i
        return builder.load(builder.gep(module.global_named(name), idx))

    return builder, load


class TestLeafScores:
    def test_consecutive_loads_score_highest(self):
        _, load = _env()
        scorer = LookAheadScorer()
        a0, a1 = load("A", 0), load("A", 1)
        b5 = load("B", 5)
        assert scorer.score_pair(a0, a1) == scorer.table.consecutive_loads
        assert scorer.score_pair(a0, b5) == scorer.table.fail

    def test_reversed_loads(self):
        _, load = _env()
        scorer = LookAheadScorer()
        a0, a1 = load("A", 0), load("A", 1)
        assert scorer.score_pair(a1, a0) == scorer.table.reversed_loads

    def test_splat(self):
        _, load = _env()
        scorer = LookAheadScorer()
        a0 = load("A", 0)
        assert scorer.score_pair(a0, a0) == scorer.table.splat

    def test_constants(self):
        scorer = LookAheadScorer()
        assert (
            scorer.score_pair(Constant(F64, 1.0), Constant(F64, 2.0))
            == scorer.table.constants
        )

    def test_mismatched_types_fail(self):
        builder, load = _env()
        scorer = LookAheadScorer()
        a0 = load("A", 0)
        n = Constant(I64, 1)
        assert scorer.score_pair(a0, n) == scorer.table.fail


class TestRecursiveScores:
    def test_same_opcode_with_matching_operands_beats_bare_match(self):
        builder, load = _env()
        scorer = LookAheadScorer(depth=2)
        good_l = builder.fadd(load("A", 0), load("B", 0))
        good_r = builder.fadd(load("A", 1), load("B", 1))
        bad_r = builder.fadd(Constant(F64, 1.0), Constant(F64, 2.0))
        assert scorer.score_pair(good_l, good_r) > scorer.score_pair(good_l, bad_r)

    def test_commutative_crossed_pairing_found(self):
        builder, load = _env()
        scorer = LookAheadScorer(depth=2)
        left = builder.fadd(load("A", 0), load("B", 0))
        crossed = builder.fadd(load("B", 1), load("A", 1))
        straight = builder.fadd(load("A", 1), load("B", 1))
        # the crossed operand order should score as high as the straight one
        assert scorer.score_pair(left, crossed) == scorer.score_pair(left, straight)

    def test_depth_zero_ignores_operands(self):
        builder, load = _env()
        shallow = LookAheadScorer(depth=0)
        good = builder.fadd(load("A", 0), load("B", 0))
        also_good = builder.fadd(load("A", 1), load("B", 1))
        unrelated = builder.fadd(Constant(F64, 1.0), Constant(F64, 2.0))
        assert shallow.score_pair(good, also_good) == shallow.score_pair(
            good, unrelated
        )

    def test_same_family_scores_between_same_opcode_and_fail(self):
        builder, load = _env()
        scorer = LookAheadScorer(depth=0)
        add = builder.fadd(load("A", 0), load("B", 0))
        add2 = builder.fadd(load("A", 1), load("B", 1))
        sub = builder.fsub(load("A", 1), load("B", 1))
        mul = builder.fmul(load("A", 1), load("B", 1))
        assert scorer.score_pair(add, add2) > scorer.score_pair(add, sub)
        assert scorer.score_pair(add, sub) > scorer.score_pair(add, mul)

    def test_intrinsic_callee_must_match(self):
        builder, load = _env()
        scorer = LookAheadScorer()
        sqrt = builder.call("sqrt", [load("A", 0)])
        fabs = builder.call("fabs", [load("A", 1)])
        sqrt2 = builder.call("sqrt", [load("A", 1)])
        assert scorer.score_pair(sqrt, fabs) == scorer.table.fail
        assert scorer.score_pair(sqrt, sqrt2) > 0


class TestGroupScore:
    def test_group_score_sums_consecutive_pairs(self):
        _, load = _env()
        scorer = LookAheadScorer()
        lanes = [load("A", 0), load("A", 1), load("A", 2), load("A", 3)]
        assert scorer.score_group(lanes) == 3 * scorer.table.consecutive_loads

    def test_custom_table(self):
        table = ScoreTable(consecutive_loads=100)
        _, load = _env()
        scorer = LookAheadScorer(table=table)
        assert scorer.score_pair(load("A", 0), load("A", 1)) == 100
