"""Frontend tests: lexer, parser, sema and lowering."""

import pytest

from repro.frontend import (
    LexError,
    SemanticError,
    SyntaxErrorKL,
    analyze,
    compile_source,
    parse_source,
    tokenize,
)
from repro.frontend.syntax import ArrayRef, Assign, Binary, ForLoop
from repro.interp import Interpreter, run_kernel
from repro.ir import Opcode, verify_module


FIG3_SOURCE = """
long A[64]; long B[64]; long C[64]; long D[64];

kernel fig3(n) {
  for (i = 0; i < n; i += 2) {
    A[i+0] = B[i+0] - C[i+0] + D[i+0];
    A[i+1] = B[i+1] + D[i+1] - C[i+1];
  }
}
"""


class TestLexer:
    def test_tokens(self):
        tokens = tokenize("kernel f(n) { A[i+0] = 1.5; }")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "keyword"
        assert "float" in kinds  # the literal 1.5
        assert kinds[-1] == "eof"

    def test_comments_stripped(self):
        tokens = tokenize("a // line comment\nb /* block\ncomment */ c")
        assert [t.text for t in tokens[:-1]] == ["a", "b", "c"]

    def test_line_tracking(self):
        tokens = tokenize("a\nb\nc")
        assert [t.location.line for t in tokens[:-1]] == [1, 2, 3]

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_compound_operators(self):
        tokens = tokenize("x += 1; y -= 2;")
        ops = [t.text for t in tokens if t.kind == "op"]
        assert "+=" in ops and "-=" in ops


class TestParser:
    def test_program_structure(self):
        program = parse_source(FIG3_SOURCE)
        assert len(program.declarations) == 4
        assert len(program.kernels) == 1
        kernel = program.kernels[0]
        assert kernel.name == "fig3"
        assert kernel.param == "n"
        loop = kernel.body[0]
        assert isinstance(loop, ForLoop)
        assert loop.step == 2
        assert len(loop.body) == 2

    def test_precedence(self):
        program = parse_source(
            "double A[4];\nkernel k(n) { A[0] = 1.0 + 2.0 * 3.0; }"
        )
        assign = program.kernels[0].body[0]
        assert isinstance(assign, Assign)
        assert isinstance(assign.value, Binary) and assign.value.op == "+"
        assert isinstance(assign.value.rhs, Binary) and assign.value.rhs.op == "*"

    def test_parentheses(self):
        program = parse_source(
            "double A[4];\nkernel k(n) { A[0] = (1.0 + 2.0) * 3.0; }"
        )
        value = program.kernels[0].body[0].value
        assert value.op == "*"

    def test_unary_minus(self):
        program = parse_source("double A[4];\nkernel k(n) { A[0] = -A[1]; }")
        from repro.frontend.syntax import Unary

        assert isinstance(program.kernels[0].body[0].value, Unary)

    def test_nofastmath_flag(self):
        program = parse_source(
            "double A[4];\nkernel k(n) nofastmath { A[0] = 1.0; }"
        )
        assert not program.kernels[0].fast_math

    def test_loop_variable_consistency_enforced(self):
        with pytest.raises(SyntaxErrorKL):
            parse_source(
                "double A[4];\nkernel k(n) { for (i = 0; j < n; i += 1) {} }"
            )

    def test_missing_semicolon(self):
        with pytest.raises(SyntaxErrorKL):
            parse_source("double A[4];\nkernel k(n) { A[0] = 1.0 }")

    def test_empty_program_rejected(self):
        with pytest.raises(SyntaxErrorKL):
            parse_source("double A[4];")


class TestSema:
    def test_unknown_array(self):
        with pytest.raises(SemanticError, match="unknown array"):
            analyze(parse_source("double A[4];\nkernel k(n) { Z[0] = 1.0; }"))

    def test_duplicate_array(self):
        with pytest.raises(SemanticError, match="duplicate array"):
            analyze(parse_source("double A[4];\ndouble A[4];\nkernel k(n) { A[0]=1.0; }"))

    def test_unbound_variable(self):
        with pytest.raises(SemanticError, match="unbound variable"):
            analyze(parse_source("double A[4];\nkernel k(n) { A[0] = x; }"))

    def test_type_mismatch(self):
        source = "double A[4]; long B[4];\nkernel k(n) { A[0] = B[0]; }"
        with pytest.raises(SemanticError):
            analyze(parse_source(source))

    def test_float_literal_in_int_context(self):
        with pytest.raises(SemanticError):
            analyze(parse_source("long A[4];\nkernel k(n) { A[0] = 1.5; }"))

    def test_int_literal_adapts_to_float(self):
        analyze(parse_source("double A[4];\nkernel k(n) { A[0] = A[1] + 1; }"))

    def test_nested_loops_rejected(self):
        source = (
            "double A[8];\nkernel k(n) {\n"
            "  for (i = 0; i < n; i += 1) {\n"
            "    for (j = 0; j < n; j += 1) { A[j] = 1.0; }\n"
            "  }\n}"
        )
        with pytest.raises(SemanticError, match="nested"):
            analyze(parse_source(source))

    def test_compound_assign_requires_binding(self):
        with pytest.raises(SemanticError, match="compound assignment"):
            analyze(parse_source("double A[4];\nkernel k(n) { t += 1.0; }"))

    def test_unknown_intrinsic(self):
        with pytest.raises(SemanticError, match="unknown intrinsic"):
            analyze(parse_source("double A[4];\nkernel k(n) { A[0] = frob(A[1]); }"))

    def test_intrinsic_arity(self):
        with pytest.raises(SemanticError, match="argument"):
            analyze(parse_source("double A[4];\nkernel k(n) { A[0] = fmin(A[1]); }"))

    def test_variable_rebinding_type_checked(self):
        source = (
            "double A[4]; long B[4];\n"
            "kernel k(n) { t = A[0]; t = B[0]; }"
        )
        with pytest.raises(SemanticError):
            analyze(parse_source(source))


class TestLowering:
    def test_fig3_compiles_and_verifies(self):
        module = compile_source(FIG3_SOURCE)
        verify_module(module)
        assert "fig3" in module.functions
        assert module.function("fig3").fast_math

    def test_execution_semantics(self):
        module = compile_source(FIG3_SOURCE)
        out = run_kernel(
            module,
            "fig3",
            [4],
            inputs={
                "B": list(range(64)),
                "C": [1] * 64,
                "D": [10] * 64,
            },
        )
        # A[i] = B[i] - 1 + 10
        assert out["A"][:4] == [9, 10, 11, 12]

    def test_scalar_temporaries(self):
        source = (
            "double A[8]; double B[8];\n"
            "kernel k(n) {\n"
            "  for (i = 0; i < n; i += 1) {\n"
            "    t = B[i] * 2.0;\n"
            "    t += 1.0;\n"
            "    A[i] = t;\n"
            "  }\n}"
        )
        module = compile_source(source)
        out = run_kernel(module, "k", [3], inputs={"B": [1.0] * 8})
        assert out["A"][:3] == [3.0, 3.0, 3.0]

    def test_compound_array_assignment(self):
        source = (
            "double A[8]; double B[8];\n"
            "kernel k(n) { for (i = 0; i < n; i += 1) { A[i] += B[i]; } }"
        )
        out = run_kernel(
            compile_source(source), "k", [2],
            inputs={"A": [1.0] * 8, "B": [2.0] * 8},
        )
        assert out["A"][:2] == [3.0, 3.0]

    def test_unary_minus_lowered_as_zero_minus(self):
        source = "double A[4]; double B[4];\nkernel k(n) { A[0] = -B[0]; }"
        module = compile_source(source)
        out = run_kernel(module, "k", [0], inputs={"B": [5.0] * 4})
        assert out["A"][0] == -5.0

    def test_intrinsic_call(self):
        source = "double A[4]; double B[4];\nkernel k(n) { A[0] = sqrt(B[0]); }"
        out = run_kernel(compile_source(source), "k", [0], inputs={"B": [16.0] * 4})
        assert out["A"][0] == 4.0

    def test_index_cse_shares_gep_math(self):
        module = compile_source(FIG3_SOURCE)
        function = module.function("fig3")
        body = function.block_named("body")
        induction = function.block_named("header").phis()[0]
        index_adds = [
            inst
            for inst in body
            if inst.opcode is Opcode.ADD and inst.operand(0) is induction
        ]
        # i+0 and i+1 each computed once, plus the i+=2 increment
        assert len(index_adds) == 3

    def test_integer_division_kernel(self):
        source = (
            "long A[8]; long B[8];\n"
            "kernel k(n) { for (i = 0; i < n; i += 1) { A[i] = B[i] / 2; } }"
        )
        out = run_kernel(compile_source(source), "k", [3], inputs={"B": [7] * 8})
        assert out["A"][:3] == [3, 3, 3]

    def test_multiple_kernels_in_one_module(self):
        source = (
            "double A[8];\n"
            "kernel first(n) { A[0] = 1.0; }\n"
            "kernel second(n) { A[1] = 2.0; }\n"
        )
        module = compile_source(source)
        assert set(module.functions) == {"first", "second"}


class TestCompareAndTernary:
    def test_ternary_parses(self):
        program = parse_source(
            "double A[4];\nkernel k(n) { A[0] = A[1] < A[2] ? A[1] : A[2]; }"
        )
        from repro.frontend.syntax import Compare, Ternary

        value = program.kernels[0].body[0].value
        assert isinstance(value, Ternary)
        assert isinstance(value.cond, Compare) and value.cond.op == "<"

    def test_chained_comparison_rejected(self):
        with pytest.raises(SyntaxErrorKL, match="chain"):
            parse_source("double A[4];\nkernel k(n) { A[0] = A[1] < A[2] < A[3] ? 1.0 : 2.0; }")

    def test_comparison_outside_ternary_type_checked(self):
        # a bare comparison has type i1 and cannot store into double
        with pytest.raises(SemanticError):
            analyze(parse_source("double A[4];\nkernel k(n) { A[0] = A[1] < A[2]; }"))

    def test_clamp_kernel_executes(self):
        source = (
            "double A[16]; double B[16]; double C[16];\n"
            "kernel clamp(n) {\n"
            "  for (i = 0; i < n; i += 1) {\n"
            "    A[i] = B[i] < C[i] ? B[i] : C[i];\n"
            "  }\n}"
        )
        out = run_kernel(
            compile_source(source), "clamp", [4],
            inputs={
                "B": [1.0, 5.0, 2.0, 8.0] + [0.0] * 12,
                "C": [3.0, 4.0, 9.0, 1.0] + [0.0] * 12,
            },
        )
        assert out["A"][:4] == [1.0, 4.0, 2.0, 1.0]

    def test_integer_comparison_uses_icmp(self):
        source = (
            "long A[8]; long B[8];\n"
            "kernel k(n) { A[0] = B[0] >= B[1] ? B[0] : B[1]; }"
        )
        module = compile_source(source)
        opcodes = [inst.opcode for inst in module.function("k").entry]
        assert Opcode.ICMP in opcodes and Opcode.SELECT in opcodes

    def test_clamp_lanes_vectorize_from_source(self):
        from repro.machine import DEFAULT_TARGET
        from repro.vectorizer import SLP_CONFIG, compile_module

        source = (
            "double A[64]; double B[64]; double C[64];\n"
            "kernel clamp(n) {\n"
            "  for (i = 0; i < n; i += 4) {\n"
            "    A[i+0] = B[i+0] < C[i+0] ? B[i+0] : C[i+0];\n"
            "    A[i+1] = B[i+1] < C[i+1] ? B[i+1] : C[i+1];\n"
            "    A[i+2] = B[i+2] < C[i+2] ? B[i+2] : C[i+2];\n"
            "    A[i+3] = B[i+3] < C[i+3] ? B[i+3] : C[i+3];\n"
            "  }\n}"
        )
        compiled = compile_module(compile_source(source), SLP_CONFIG, DEFAULT_TARGET)
        assert compiled.report.vectorized_graphs()
