"""Tests for the parameterized workload generator."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.interp import Interpreter
from repro.ir import verify_module
from repro.kernels.generator import (
    GeneratorSpec,
    generate_inputs,
    generate_kernel,
    sweep_specs,
)
from repro.machine import DEFAULT_TARGET
from repro.vectorizer import ALL_CONFIGS, O3_CONFIG, SNSLP_CONFIG, compile_module


class TestSpecValidation:
    def test_rejects_single_lane(self):
        with pytest.raises(ValueError):
            GeneratorSpec(lanes=1)

    def test_rejects_all_minus(self):
        with pytest.raises(ValueError):
            GeneratorSpec(terms=3, minus_terms=3)

    def test_rejects_single_term(self):
        with pytest.raises(ValueError):
            GeneratorSpec(terms=1, minus_terms=0)


class TestGeneratedModules:
    def test_verifies(self):
        for spec in sweep_specs():
            verify_module(generate_kernel(spec))

    def test_deterministic(self):
        from repro.ir import print_module

        spec = GeneratorSpec(lanes=2, terms=4, minus_terms=2, seed=42)
        assert print_module(generate_kernel(spec)) == print_module(
            generate_kernel(spec)
        )

    def test_seed_changes_shape(self):
        from repro.ir import print_module

        a = GeneratorSpec(lanes=2, terms=4, minus_terms=2, seed=1)
        b = GeneratorSpec(lanes=2, terms=4, minus_terms=2, seed=2)
        assert print_module(generate_kernel(a)) != print_module(
            generate_kernel(b)
        )

    def test_all_lanes_compute_same_signed_sum(self):
        # unshuffled and shuffled variants must produce identical outputs
        shuffled = GeneratorSpec(lanes=4, terms=5, minus_terms=2, seed=9)
        plain = GeneratorSpec(
            lanes=4, terms=5, minus_terms=2, seed=9, shuffle_lanes=False
        )
        inputs = generate_inputs(shuffled)

        def run(spec):
            interp = Interpreter(generate_kernel(spec))
            for name, values in inputs.items():
                interp.write_global(name, values)
            interp.run("kernel", [64])
            return interp.read_global("OUT")

        for x, y in zip(run(shuffled), run(plain)):
            assert math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-12)


class TestGeneratedVectorization:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        lanes=st.sampled_from([2, 4]),
        terms=st.integers(2, 6),
        minus=st.integers(0, 5),
    )
    def test_all_configs_correct_on_generated(self, seed, lanes, terms, minus):
        minus = min(minus, terms - 1)
        spec = GeneratorSpec(
            lanes=lanes, terms=terms, minus_terms=minus, seed=seed
        )
        module = generate_kernel(spec)
        inputs = generate_inputs(spec)
        oracle = None
        for config in ALL_CONFIGS:
            compiled = compile_module(module, config, DEFAULT_TARGET)
            interp = Interpreter(compiled.module)
            for name, values in inputs.items():
                interp.write_global(name, values)
            interp.run("kernel", [64])
            out = interp.read_global("OUT")
            if oracle is None:
                oracle = out
                continue
            for x, y in zip(out, oracle):
                assert math.isclose(x, y, rel_tol=1e-8, abs_tol=1e-9), (
                    f"spec={spec} config={config.name}"
                )

    def test_snslp_always_vectorizes_sweep(self):
        for spec in sweep_specs():
            compiled = compile_module(
                generate_kernel(spec), SNSLP_CONFIG, DEFAULT_TARGET
            )
            assert compiled.report.vectorized_graphs(), spec
