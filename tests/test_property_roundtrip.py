"""Property-based printer/parser round-trip tests.

The textual round-trip doubles as the module cloner inside the
compilation pipeline, so its fidelity underpins every benchmark result:
``parse(print(m))`` must print identically and execute identically.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.interp import Interpreter
from repro.ir import parse_module, print_module, verify_module
from test_property_vectorizer import _inputs, _random_kernel, _run


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    num_lanes=st.sampled_from([2, 4]),
    float_mode=st.booleans(),
)
def test_print_parse_fixpoint(seed, num_lanes, float_mode):
    module = _random_kernel(seed, num_lanes, float_mode)
    text = print_module(module)
    parsed = parse_module(text)
    verify_module(parsed)
    assert print_module(parsed) == text


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000), float_mode=st.booleans())
def test_round_trip_preserves_execution(seed, float_mode):
    module = _random_kernel(seed, 2, float_mode)
    clone = parse_module(print_module(module))
    inputs = _inputs(seed, float_mode)
    assert _run(module, inputs) == _run(clone, inputs)
