"""Tests for CompilerSession: reentrancy, parallel drivers, compile cache.

PR 4's contract: compilation is reentrant (interleaved compiles never
bleed counters into each other), the parallel benchmark driver is
bit-identical to the serial one, and a compile-cache hit reproduces a
cold compile on every deterministic field.
"""

from concurrent.futures import ThreadPoolExecutor

from repro.bench import run_kernel_matrix, run_kernel_matrix_parallel, run_suite_parallel
from repro.ir import print_module
from repro.kernels import kernel_named
from repro.observe import STAT, STATS
from repro.observe.session import (
    CompilerSession,
    current_session,
    current_stats,
    use_session,
)
from repro.vectorizer import (
    CompileCache,
    LSLP_CONFIG,
    SNSLP_CONFIG,
    cached_compile_module,
    clone_module,
    compile_module,
)

MOTIVATING = ("motiv-leaf-reorder", "motiv-trunk-reorder")


class TestSessionBasics:
    def test_derive_shares_tracer_but_not_stats(self):
        parent = CompilerSession(name="parent")
        child = parent.derive(name="child")
        assert child.tracer is parent.tracer
        assert child.remarks is parent.remarks
        assert child.stats is not parent.stats

    def test_use_session_scopes_ambient_lookup(self):
        session = CompilerSession(name="scoped")
        assert current_session() is not session
        with use_session(session):
            assert current_session() is session
            assert current_stats() is session.stats
        assert current_session() is not session

    def test_stat_proxy_records_into_active_session(self):
        handle = STAT("test.session.scratch", "scratch counter")
        a, b = CompilerSession(name="a"), CompilerSession(name="b")
        with use_session(a):
            handle.add(2)
        with use_session(b):
            handle.add(5)
            assert handle.value == 5
        assert a.stats.value("test.session.scratch") == 2
        assert b.stats.value("test.session.scratch") == 5
        assert "test.session.scratch" not in STATS.snapshot()


class TestReentrantCompilation:
    def test_interleaved_compiles_have_disjoint_correct_counters(self):
        """Two compilations racing on a thread pool each snapshot exactly
        their own counters (the historical global-registry design made
        this impossible: reset-on-entry corrupted whichever compile was
        mid-flight)."""
        module_a = kernel_named("motiv-leaf-reorder").build()
        module_b = kernel_named("sphinx-dot-product").build()
        expect_a = compile_module(module_a, SNSLP_CONFIG).counters
        expect_b = compile_module(module_b, SNSLP_CONFIG).counters
        assert expect_a != expect_b  # distinct kernels -> distinct profiles

        global_before = STATS.snapshot()
        with ThreadPoolExecutor(max_workers=2) as pool:
            for _ in range(4):  # repeat to actually interleave phases
                fut_a = pool.submit(compile_module, module_a, SNSLP_CONFIG)
                fut_b = pool.submit(compile_module, module_b, SNSLP_CONFIG)
                assert fut_a.result().counters == expect_a
                assert fut_b.result().counters == expect_b
        # nothing leaked into the process-default registry either
        assert STATS.snapshot() == global_before

    def test_explicit_session_accumulates_across_compiles(self):
        module = kernel_named("motiv-leaf-reorder").build()
        one = compile_module(module, SNSLP_CONFIG).counters
        session = CompilerSession(name="accumulating")
        compile_module(module, SNSLP_CONFIG, session=session)
        result = compile_module(module, SNSLP_CONFIG, session=session)
        assert result.counters == {name: 2 * value for name, value in one.items()}


class TestParallelEquivalence:
    def test_matrix_parallel_matches_serial_bit_for_bit(self):
        kernel = kernel_named("motiv-leaf-reorder")
        serial = run_kernel_matrix(kernel)
        parallel = run_kernel_matrix_parallel(kernel, jobs=4)
        assert set(serial) == set(parallel)
        for name in serial:
            s, p = serial[name], parallel[name]
            assert p.cycles == s.cycles
            assert p.instructions == s.instructions
            assert p.counters == s.counters
            assert p.outputs == s.outputs
            assert p.correct == s.correct is True
            assert p.vectorized_graphs == s.vectorized_graphs

    def test_suite_parallel_matches_serial_over_motivating_kernels(self):
        kernels = [kernel_named(name) for name in MOTIVATING]
        suite = run_suite_parallel(kernels, jobs=4)
        for kernel in kernels:
            serial = run_kernel_matrix(kernel)
            for name, expected in serial.items():
                run = suite[kernel.name][name]
                assert run.cycles == expected.cycles, (kernel.name, name)
                assert run.counters == expected.counters, (kernel.name, name)
                assert run.correct == expected.correct is True

    def test_suite_via_explicit_service_matches_serial(self):
        """PR 7: the same suite routed through a caller-owned
        CompileService (warm workers, no result cache) stays
        bit-identical to the serial run."""
        from repro.serve.service import CompileService

        kernels = [kernel_named(name) for name in MOTIVATING]
        session = CompilerSession(name="service-equivalence")
        with CompileService(workers=2, session=session, name="eq") as service:
            suite = run_suite_parallel(kernels, jobs=2, service=service)
        for kernel in kernels:
            serial = run_kernel_matrix(kernel)
            for name, expected in serial.items():
                run = suite[kernel.name][name]
                assert run.cycles == expected.cycles, (kernel.name, name)
                assert run.counters == expected.counters, (kernel.name, name)
                assert run.outputs == expected.outputs, (kernel.name, name)
                assert run.correct == expected.correct is True

    def test_jobs_one_falls_back_to_serial_inline(self):
        kernel = kernel_named("motiv-trunk-reorder")
        assert (
            run_kernel_matrix_parallel(kernel, jobs=1)[SNSLP_CONFIG.name].cycles
            == run_kernel_matrix(kernel)[SNSLP_CONFIG.name].cycles
        )


class TestCompileCache:
    def test_hit_equals_cold_compile(self, tmp_path):
        module = kernel_named("motiv-leaf-reorder").build()
        session = CompilerSession(name="cache-test")
        cache = CompileCache(str(tmp_path))
        with use_session(session):
            cold = cached_compile_module(module, SNSLP_CONFIG, cache=cache)
            warm = cached_compile_module(module, SNSLP_CONFIG, cache=cache)
        assert session.stats.value("cache.misses") == 1
        assert session.stats.value("cache.hits") == 1
        assert print_module(warm.module) == print_module(cold.module)
        assert warm.counters == cold.counters
        assert warm.phase_seconds == cold.phase_seconds
        assert warm.compile_seconds == cold.compile_seconds
        graphs = lambda r: [
            (g.function, g.block, g.lanes, g.cost, g.vectorized,
             g.node_count, g.gather_count, g.kind)
            for g in r.report.all_graphs()
        ]
        assert graphs(warm) == graphs(cold)

    def test_cache_persists_across_instances(self, tmp_path):
        module = kernel_named("motiv-trunk-reorder").build()
        session = CompilerSession(name="cache-disk")
        with use_session(session):
            cold = cached_compile_module(
                module, SNSLP_CONFIG, cache=CompileCache(str(tmp_path))
            )
            warm = cached_compile_module(
                module, SNSLP_CONFIG, cache=CompileCache(str(tmp_path))
            )
        assert session.stats.value("cache.hits") == 1
        assert warm.counters == cold.counters
        assert print_module(warm.module) == print_module(cold.module)

    def test_key_distinguishes_config_and_unroll(self, tmp_path):
        module = kernel_named("motiv-leaf-reorder").build()
        cache = CompileCache(str(tmp_path))
        session = CompilerSession(name="cache-key")
        with use_session(session):
            cached_compile_module(module, SNSLP_CONFIG, cache=cache)
            cached_compile_module(module, LSLP_CONFIG, cache=cache)
        assert session.stats.value("cache.misses") == 2
        assert session.stats.value("cache.hits") == 0


class TestStructuralClone:
    def test_structural_clone_matches_text_round_trip(self):
        for name in MOTIVATING + ("sphinx-dot-product", "milc-su3-cmul"):
            module = kernel_named(name).build()
            assert print_module(clone_module(module)) == print_module(
                clone_module(module, via_text=True)
            ), name
