"""End-to-end configuration tests: the paper's O3 / (SLP) / LSLP / SN-SLP.

These are the repository's core acceptance tests: for every kernel in the
suite, each configuration must (a) preserve semantics against the O3
oracle and (b) land on the expected side of the vectorize/don't-vectorize
line that defines the paper's story.
"""

import pytest

from repro.bench import run_kernel_matrix, speedup_over
from repro.kernels import all_kernels, kernel_named
from repro.machine import DEFAULT_TARGET, NO_ADDSUB, SSE4_LIKE
from repro.vectorizer import (
    ALL_CONFIGS,
    LSLP_CONFIG,
    O3_CONFIG,
    SLP_CONFIG,
    SNSLP_CONFIG,
    compile_module,
    config_named,
)

#: kernel -> which configs are expected to vectorize it
EXPECTATIONS = {
    "motiv-leaf-reorder": {"SLP": False, "LSLP": False, "SN-SLP": True},
    # SLP/LSLP partially vectorize the product leaves; SN-SLP gets it all
    "milc-su3-cmul": {"SLP": True, "LSLP": True, "SN-SLP": True},
    "motiv-trunk-reorder": {"SLP": False, "LSLP": False, "SN-SLP": True},
    "milc-field-norm": {"SLP": False, "LSLP": False, "SN-SLP": True},
    "milc-su3-vec4": {"SLP": False, "LSLP": False, "SN-SLP": True},
    "namd-force-accum": {"SLP": False, "LSLP": False, "SN-SLP": True},
    "dealii-cell-assembly": {"SLP": False, "LSLP": False, "SN-SLP": True},
    "soplex-ratio-update": {"SLP": False, "LSLP": False, "SN-SLP": True},
    "povray-shade-blend": {"SLP": False, "LSLP": False, "SN-SLP": True},
    # sqrt is expensive enough that call bundles pay even over gathered
    # operands; SN-SLP additionally vectorizes the chain beneath
    "povray-ray-length": {"SLP": True, "LSLP": True, "SN-SLP": True},
    "sphinx-gauss-score": {"SLP": False, "LSLP": False, "SN-SLP": True},
    "lslp-commutative-chain": {"SLP": False, "LSLP": True, "SN-SLP": True},
    # horizontal reductions: the pure chain reduces everywhere, the
    # sign-mixed chain only under the Super-Node's APO partitioning
    "sphinx-dot-product": {"SLP": True, "LSLP": True, "SN-SLP": True},
    "milc-staple-reduce": {"SLP": False, "LSLP": False, "SN-SLP": True},
    "plain-fma-lanes": {"SLP": True, "LSLP": True, "SN-SLP": True},
    "serial-dependence": {"SLP": False, "LSLP": False, "SN-SLP": False},
}


@pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.name)
class TestEveryKernel:
    def test_all_configs_preserve_semantics(self, kernel):
        runs = run_kernel_matrix(kernel, ALL_CONFIGS, DEFAULT_TARGET)
        for name, run in runs.items():
            assert run.correct, f"{kernel.name} under {name} diverged from O3"

    def test_vectorization_expectations(self, kernel):
        if kernel.name not in EXPECTATIONS:
            pytest.skip("no expectation recorded")
        runs = run_kernel_matrix(kernel, ALL_CONFIGS, DEFAULT_TARGET)
        for config_name, expected in EXPECTATIONS[kernel.name].items():
            got = runs[config_name].vectorized_graphs > 0
            assert got == expected, (
                f"{kernel.name} under {config_name}: vectorized={got}, "
                f"expected {expected}"
            )

    def test_speedups_are_ordered(self, kernel):
        runs = run_kernel_matrix(kernel, ALL_CONFIGS, DEFAULT_TARGET)
        # monotonicity: SN-SLP >= LSLP >= vanilla SLP >= O3 (within epsilon)
        o3 = 1.0
        slp = speedup_over(runs, "SLP")
        lslp = speedup_over(runs, "LSLP")
        snslp = speedup_over(runs, "SN-SLP")
        eps = 1e-9
        assert slp >= o3 - eps
        assert lslp >= slp - eps
        assert snslp >= lslp - eps


class TestPaperHeadlines:
    def test_motivating_examples_match_paper_costs(self):
        # Fig 2: (L)SLP graph cost exactly 0 -> not profitable
        leaf = kernel_named("motiv-leaf-reorder")
        compiled = compile_module(leaf.build(), LSLP_CONFIG, DEFAULT_TARGET)
        costs = [g.cost for g in compiled.report.all_graphs()]
        assert costs == [0.0]
        # Fig 2 under SN-SLP: -6
        compiled = compile_module(leaf.build(), SNSLP_CONFIG, DEFAULT_TARGET)
        costs = [g.cost for g in compiled.report.all_graphs()]
        assert costs == [-6.0]

    def test_fig3_costs(self):
        trunk = kernel_named("motiv-trunk-reorder")
        compiled = compile_module(trunk.build(), LSLP_CONFIG, DEFAULT_TARGET)
        assert [g.cost for g in compiled.report.all_graphs()] == [4.0]
        compiled = compile_module(trunk.build(), SNSLP_CONFIG, DEFAULT_TARGET)
        assert [g.cost for g in compiled.report.all_graphs()] == [-6.0]

    def test_snslp_beats_lslp_on_inverse_kernels(self):
        for name in ("motiv-trunk-reorder", "milc-su3-cmul", "namd-force-accum"):
            runs = run_kernel_matrix(kernel_named(name), ALL_CONFIGS, DEFAULT_TARGET)
            assert speedup_over(runs, "SN-SLP") > speedup_over(runs, "LSLP") + 0.05

    def test_lslp_equals_snslp_on_commutative_kernel(self):
        runs = run_kernel_matrix(
            kernel_named("lslp-commutative-chain"), ALL_CONFIGS, DEFAULT_TARGET
        )
        assert speedup_over(runs, "LSLP") == pytest.approx(
            speedup_over(runs, "SN-SLP")
        )

    def test_node_stats_super_exceed_multi(self):
        # Figures 6/7: aggregate Super-Node size must dominate Multi-Node
        total_multi = 0
        total_super = 0
        for kernel in all_kernels():
            runs = run_kernel_matrix(
                kernel, (LSLP_CONFIG, SNSLP_CONFIG), DEFAULT_TARGET
            )
            total_multi += runs["LSLP"].aggregate_node_size
            total_super += runs["SN-SLP"].aggregate_node_size
        assert total_super > total_multi

    def test_average_node_size_near_paper_value(self):
        # the paper reports ~2.2 average node depth
        sizes = []
        for kernel in all_kernels():
            runs = run_kernel_matrix(kernel, (SNSLP_CONFIG,), DEFAULT_TARGET)
            run = runs["SN-SLP"]
            if run.node_count:
                sizes.append(run.aggregate_node_size / run.node_count)
        average = sum(sizes) / len(sizes)
        assert 2.0 <= average <= 3.0


class TestConfigRegistry:
    def test_config_lookup(self):
        assert config_named("sn-slp") is SNSLP_CONFIG
        assert config_named("O3") is O3_CONFIG
        with pytest.raises(KeyError):
            config_named("psl")

    def test_o3_disables_vectorizer(self):
        kernel = kernel_named("plain-fma-lanes")
        compiled = compile_module(kernel.build(), O3_CONFIG, DEFAULT_TARGET)
        assert compiled.report.all_graphs() == []

    def test_config_flags(self):
        assert not SLP_CONFIG.chains_enabled
        assert LSLP_CONFIG.enable_multinode and not LSLP_CONFIG.enable_supernode
        assert SNSLP_CONFIG.enable_supernode


class TestOtherTargets:
    def test_sse_width_still_vectorizes(self):
        kernel = kernel_named("motiv-trunk-reorder")
        runs = run_kernel_matrix(kernel, (SNSLP_CONFIG,), SSE4_LIKE)
        assert runs["SN-SLP"].vectorized_graphs > 0
        assert runs["SN-SLP"].correct

    def test_no_addsub_target_correct(self):
        kernel = kernel_named("milc-su3-cmul")
        runs = run_kernel_matrix(kernel, ALL_CONFIGS, NO_ADDSUB)
        assert all(r.correct for r in runs.values())


class TestReorderCounters:
    """The applied-move counters retell the motivating examples' story:
    Figure 2 needs only a leaf swap, Figure 3 additionally a trunk swap."""

    def _records(self, kernel_name):
        kernel = kernel_named(kernel_name)
        compiled = compile_module(kernel.build(), SNSLP_CONFIG, DEFAULT_TARGET)
        return [
            record
            for graph in compiled.report.all_graphs()
            for record in graph.supernodes
        ]

    def test_fig2_needs_only_leaf_swap(self):
        records = self._records("motiv-leaf-reorder")
        assert records[0].leaf_swaps >= 1
        assert records[0].trunk_swaps == 0

    def test_fig3_needs_trunk_swap(self):
        records = self._records("motiv-trunk-reorder")
        assert records[0].trunk_swaps >= 1

    def test_four_lane_kernel_swaps_multiple_lanes(self):
        records = self._records("milc-su3-vec4")
        assert records[0].lanes == 4
        assert records[0].trunk_swaps >= 2
