"""Printer/parser round-trip and error handling tests."""

import pytest

from repro.ir import (
    F64,
    I64,
    VOID,
    CmpPredicate,
    Constant,
    Function,
    IRBuilder,
    Module,
    Opcode,
    ParseError,
    parse_module,
    print_module,
    verify_module,
    vector_of,
)
from conftest import build_simple_store_module


def _round_trip(module: Module) -> Module:
    text = print_module(module)
    parsed = parse_module(text)
    verify_module(parsed)
    assert print_module(parsed) == text
    return parsed


class TestRoundTrip:
    def test_simple_store_module(self):
        _round_trip(build_simple_store_module())

    def test_globals_with_initializers(self):
        module = Module("m")
        module.add_global("A", I64, 3, [1, -2, 3])
        module.add_global("B", F64, 2, [0.5, -1.25])
        function = Function("f", [], VOID)
        module.add_function(function)
        IRBuilder(function.add_block("entry")).ret()
        parsed = _round_trip(module)
        assert parsed.global_named("A").initializer == [1, -2, 3]
        assert parsed.global_named("B").initializer == [0.5, -1.25]

    def test_loop_with_phi(self):
        module = Module("loop")
        module.add_global("A", F64, 8)
        function = Function("f", [("n", I64)], VOID)
        module.add_function(function)
        entry = function.add_block("entry")
        header = function.add_block("header")
        body = function.add_block("body")
        done = function.add_block("done")
        b = IRBuilder(entry)
        b.br(header)
        b.position_at_end(header)
        i = b.phi(I64, "i")
        cond = b.icmp(CmpPredicate.LT, i, function.arguments[0])
        b.condbr(cond, body, done)
        b.position_at_end(body)
        p = b.gep(module.global_named("A"), i)
        b.store(b.fadd(b.load(p), Constant(F64, 1.0)), p)
        inc = b.add(i, b.const_i64(1))
        b.br(header)
        i.add_incoming(b.const_i64(0), entry)
        i.add_incoming(inc, body)
        b.position_at_end(done)
        b.ret()
        _round_trip(module)

    def test_vector_instructions(self):
        module = Module("vec")
        vt = vector_of(F64, 2)
        function = Function("f", [("v", vt), ("s", F64)], F64)
        module.add_function(function)
        b = IRBuilder(function.add_block("entry"))
        v, s = function.arguments
        ins = b.insertelement(v, s, 1)
        shuf = b.shufflevector(ins, v, [0, 2])
        alt = b.altbinop([Opcode.FADD, Opcode.FSUB], shuf, v)
        ext = b.extractelement(alt, 0)
        b.ret(ext)
        _round_trip(module)

    def test_calls_and_casts_and_select(self):
        module = Module("misc")
        function = Function("f", [("x", F64), ("n", I64)], F64)
        module.add_function(function)
        b = IRBuilder(function.add_block("entry"))
        x, n = function.arguments
        converted = b.sitofp(n, F64)
        root = b.call("fmax", [b.call("sqrt", [x]), converted])
        cond = b.fcmp(CmpPredicate.GT, root, Constant(F64, 0.0))
        picked = b.select(cond, root, x)
        b.ret(picked)
        _round_trip(module)

    def test_vector_constant_operand(self):
        module = Module("vconst")
        vt = vector_of(I64, 2)
        function = Function("f", [("v", vt)], vt)
        module.add_function(function)
        b = IRBuilder(function.add_block("entry"))
        total = b.add(function.arguments[0], Constant(vt, (1, -2)))
        b.ret(total)
        parsed = _round_trip(module)
        inst = parsed.function("f").entry.instructions[0]
        assert isinstance(inst.rhs, Constant)
        assert inst.rhs.value == (1, -2)

    def test_ret_before_label_not_misparsed(self):
        # `ret` followed by a new block label must parse as a void return.
        module = Module("m")
        function = Function("f", [], VOID)
        module.add_function(function)
        b = IRBuilder(function.add_block("one"))
        two = function.add_block("two")
        b.ret()
        IRBuilder(two).ret()
        text = print_module(module)
        parsed = parse_module(text)
        assert len(parsed.function("f").blocks) == 2


class TestParseErrors:
    def test_unknown_instruction(self):
        with pytest.raises(ParseError):
            parse_module(
                "module m\nfunc @f() -> void {\nentry:\n  frob i64 %a, %b\n}\n"
            )

    def test_undefined_value(self):
        with pytest.raises(ParseError, match="undefined"):
            parse_module(
                "module m\nfunc @f() -> void {\nentry:\n"
                "  %x = add i64 %missing, 1\n  ret\n}\n"
            )

    def test_redefinition(self):
        with pytest.raises(ParseError, match="redefinition"):
            parse_module(
                "module m\nfunc @f() -> void {\nentry:\n"
                "  %x = add i64 1, 2\n  %x = add i64 3, 4\n  ret\n}\n"
            )

    def test_branch_to_undefined_block(self):
        with pytest.raises(ParseError):
            parse_module(
                "module m\nfunc @f() -> void {\nentry:\n  br %nowhere\n}\n"
            )

    def test_unknown_global(self):
        with pytest.raises(ParseError, match="unknown global"):
            parse_module(
                "module m\nfunc @f() -> void {\nentry:\n"
                "  %p = gep f64* @A, i64 0\n  ret\n}\n"
            )

    def test_type_mismatch_on_forward_reference(self):
        with pytest.raises(ParseError):
            parse_module(
                "module m\nfunc @f() -> void {\nentry:\n"
                "  %y = add i64 %x, 1\n  %x = fadd f64 1.0, 2.0\n  ret\n}\n"
            )

    def test_named_void_instruction_rejected(self):
        with pytest.raises(ParseError):
            parse_module(
                "module m\nglobal @A : f64 x 4\n"
                "func @f() -> void {\nentry:\n"
                "  %p = gep f64* @A, i64 0\n"
                "  %s = store f64 1.0, f64* %p\n  ret\n}\n"
            )

    def test_garbage_character(self):
        with pytest.raises(ParseError):
            parse_module("module m\n$$$\n")

    def test_comments_allowed(self):
        parsed = parse_module(
            "module m\n# a comment\nfunc @f() -> void {\nentry:\n  ret\n}\n"
        )
        assert "f" in parsed.functions


class TestPrintAfterTransform:
    """Regression: modules that were parsed and then *modified* must print
    parseable text — fresh auto-names must not collide with parsed ones."""

    def test_vectorized_parsed_module_round_trips(self):
        from repro.kernels import kernel_named
        from repro.machine import DEFAULT_TARGET
        from repro.vectorizer import SNSLP_CONFIG, compile_module

        kernel = kernel_named("motiv-trunk-reorder")
        compiled = compile_module(kernel.build(), SNSLP_CONFIG, DEFAULT_TARGET)
        text = print_module(compiled.module)  # parsed clone + new vector code
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert print_module(reparsed) == text

    def test_assign_names_respects_existing(self):
        from repro.ir import Function, IRBuilder, Module, Constant, I64, VOID

        module = Module("m")
        function = Function("f", [], VOID)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        named = builder.add(Constant(I64, 1), Constant(I64, 2), name="t")
        fresh = builder.add(named, named)  # unnamed; must not become "t"
        builder.ret()
        function.assign_names()
        assert named.name == "t"
        assert fresh.name and fresh.name != "t"

    def test_add_block_respects_parsed_labels(self):
        module = parse_module(
            "module m\nfunc @f() -> void {\nentry:\n  ret\n}\n"
        )
        function = module.function("f")
        block = function.add_block("entry")
        assert block.name != "entry"
