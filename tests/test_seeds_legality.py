"""Seed collection and scheduling-legality tests."""

import pytest

from repro.ir import (
    F32,
    F64,
    I64,
    VOID,
    Constant,
    Function,
    IRBuilder,
    Module,
)
from repro.machine import SCALAR, SKYLAKE_LIKE, SSE4_LIKE
from repro.vectorizer import (
    bundle_is_schedulable_loads,
    bundle_is_schedulable_stores,
    collect_store_seeds,
    lanes_form_valid_bundle,
    loads_are_consecutive,
)


def _module(element=F64):
    module = Module("m")
    for name in "ABC":
        module.add_global(name, element, 64)
    function = Function("k", [("i", I64)], VOID)
    module.add_function(function)
    builder = IRBuilder(function.add_block("entry"))
    return module, function, builder


def _store_lane(module, builder, i, array, offset, value=None):
    idx = builder.add(i, builder.const_i64(offset)) if offset else i
    pointer = builder.gep(module.global_named(array), idx)
    if value is None:
        value = Constant(module.globals[array].element, 1.0)
    return builder.store(value, pointer)


class TestSeedCollection:
    def test_adjacent_stores_form_seed(self):
        module, function, builder = _module()
        i = function.arguments[0]
        stores = [_store_lane(module, builder, i, "A", k) for k in range(2)]
        builder.ret()
        seeds = collect_store_seeds(function.entry, SKYLAKE_LIKE.isa)
        assert len(seeds) == 1
        assert seeds[0] == stores

    def test_wide_run_chunks_to_widest_legal(self):
        module, function, builder = _module()
        i = function.arguments[0]
        for k in range(6):
            _store_lane(module, builder, i, "A", k)
        builder.ret()
        seeds = collect_store_seeds(function.entry, SKYLAKE_LIKE.isa)
        # 6 f64 stores on a 256-bit target: one VF=4 chunk + one VF=2 chunk
        assert [len(s) for s in seeds] == [4, 2]

    def test_sse_width_limits_chunk(self):
        module, function, builder = _module()
        i = function.arguments[0]
        for k in range(4):
            _store_lane(module, builder, i, "A", k)
        builder.ret()
        seeds = collect_store_seeds(function.entry, SSE4_LIKE.isa)
        assert [len(s) for s in seeds] == [2, 2]

    def test_scalar_target_yields_nothing(self):
        module, function, builder = _module()
        i = function.arguments[0]
        for k in range(4):
            _store_lane(module, builder, i, "A", k)
        builder.ret()
        assert collect_store_seeds(function.entry, SCALAR.isa) == []

    def test_gap_splits_runs(self):
        module, function, builder = _module()
        i = function.arguments[0]
        for k in (0, 1, 3, 4):
            _store_lane(module, builder, i, "A", k)
        builder.ret()
        seeds = collect_store_seeds(function.entry, SKYLAKE_LIKE.isa)
        assert [len(s) for s in seeds] == [2, 2]

    def test_stores_sorted_by_offset(self):
        module, function, builder = _module()
        i = function.arguments[0]
        s1 = _store_lane(module, builder, i, "A", 1)
        s0 = _store_lane(module, builder, i, "A", 0)
        builder.ret()
        seeds = collect_store_seeds(function.entry, SKYLAKE_LIKE.isa)
        assert seeds[0] == [s0, s1]

    def test_different_arrays_grouped_separately(self):
        module, function, builder = _module()
        i = function.arguments[0]
        a = [_store_lane(module, builder, i, "A", k) for k in range(2)]
        b = [_store_lane(module, builder, i, "B", k) for k in range(2)]
        builder.ret()
        seeds = collect_store_seeds(function.entry, SKYLAKE_LIKE.isa)
        assert seeds == [a, b]

    def test_duplicate_offsets_break_run(self):
        module, function, builder = _module()
        i = function.arguments[0]
        _store_lane(module, builder, i, "A", 0)
        _store_lane(module, builder, i, "A", 0)
        _store_lane(module, builder, i, "A", 1)
        builder.ret()
        seeds = collect_store_seeds(function.entry, SKYLAKE_LIKE.isa)
        # first run is [0] (too short), second run [0,1] chunks to one seed
        assert len(seeds) == 1

    def test_vector_valued_stores_ignored(self):
        from repro.ir import vector_of

        module, function, builder = _module()
        vt = vector_of(F64, 2)
        pointer = builder.gep(module.global_named("A"), 0)
        builder.store(Constant(vt, (1.0, 2.0)), pointer)
        builder.ret()
        assert collect_store_seeds(function.entry, SKYLAKE_LIKE.isa) == []


class TestBundleValidity:
    def test_valid_bundle(self):
        module, function, builder = _module()
        i = function.arguments[0]
        loads = [
            builder.load(builder.gep(module.global_named("B"), k)) for k in range(2)
        ]
        assert lanes_form_valid_bundle(loads) is None

    def test_repeated_lane_rejected(self):
        module, function, builder = _module()
        load = builder.load(builder.gep(module.global_named("B"), 0))
        assert lanes_form_valid_bundle([load, load]) == "repeated value across lanes"

    def test_type_mismatch_rejected(self):
        module, function, builder = _module()
        module.add_global("F", F32, 8)
        l64 = builder.load(builder.gep(module.global_named("B"), 0))
        l32 = builder.load(builder.gep(module.global_named("F"), 0))
        assert lanes_form_valid_bundle([l64, l32]) == "mismatched lane types"

    def test_constant_lane_rejected(self):
        module, function, builder = _module()
        load = builder.load(builder.gep(module.global_named("B"), 0))
        assert (
            lanes_form_valid_bundle([load, Constant(F64, 1.0)])
            == "non-instruction lane"
        )

    def test_cross_block_rejected(self):
        module, function, builder = _module()
        l0 = builder.load(builder.gep(module.global_named("B"), 0))
        other = function.add_block("other")
        b2 = IRBuilder(other)
        l1 = b2.load(b2.gep(module.global_named("B"), 1))
        assert lanes_form_valid_bundle([l0, l1]) == "lanes span blocks"


class TestLoadConsecutivity:
    def test_consecutive_in_lane_order(self):
        module, function, builder = _module()
        loads = [
            builder.load(builder.gep(module.global_named("B"), k)) for k in range(3)
        ]
        assert loads_are_consecutive(loads)
        assert not loads_are_consecutive(list(reversed(loads)))

    def test_gap_not_consecutive(self):
        module, function, builder = _module()
        l0 = builder.load(builder.gep(module.global_named("B"), 0))
        l2 = builder.load(builder.gep(module.global_named("B"), 2))
        assert not loads_are_consecutive([l0, l2])


class TestSchedulingLegality:
    def test_clean_bundle_schedulable(self):
        module, function, builder = _module()
        i = function.arguments[0]
        loads = [
            builder.load(builder.gep(module.global_named("B"), k)) for k in range(2)
        ]
        stores = [
            _store_lane(module, builder, i, "A", k, value=loads[k]) for k in range(2)
        ]
        builder.ret()
        anchor = stores[-1]
        assert bundle_is_schedulable_stores(stores, anchor)
        assert bundle_is_schedulable_loads(loads, anchor, stores)

    def test_aliasing_store_between_seed_stores(self):
        # store A[0]; store B[j] (unanalyzable index -> may alias); store A[1]
        module, function, builder = _module()
        i = function.arguments[0]
        s0 = _store_lane(module, builder, i, "A", 0)
        opaque = builder.mul(i, builder.const_i64(3))
        builder.store(
            Constant(F64, 9.0), builder.gep(module.global_named("A"), opaque)
        )
        s1 = _store_lane(module, builder, i, "A", 1)
        builder.ret()
        assert not bundle_is_schedulable_stores([s0, s1], s1)

    def test_store_to_other_array_between_is_fine(self):
        module, function, builder = _module()
        i = function.arguments[0]
        s0 = _store_lane(module, builder, i, "A", 0)
        _store_lane(module, builder, i, "B", 0)
        s1 = _store_lane(module, builder, i, "A", 1)
        builder.ret()
        assert bundle_is_schedulable_stores([s0, s1], s1)

    def test_load_cannot_move_past_aliasing_store(self):
        # load B[0]; store B[0]; anchor after -> load bundle illegal
        module, function, builder = _module()
        i = function.arguments[0]
        l0 = builder.load(builder.gep(module.global_named("B"), 0))
        l1 = builder.load(builder.gep(module.global_named("B"), 1))
        builder.store(Constant(F64, 5.0), builder.gep(module.global_named("B"), 0))
        stores = [
            _store_lane(module, builder, i, "A", k, value=(l0, l1)[k])
            for k in range(2)
        ]
        builder.ret()
        assert not bundle_is_schedulable_loads([l0, l1], stores[-1], stores)

    def test_load_after_in_bundle_store_rejected(self):
        # the paper's serial-dependence case: lane1 loads what lane0 stores
        module, function, builder = _module()
        i = function.arguments[0]
        l0 = builder.load(builder.gep(module.global_named("A"), i))
        idx1 = builder.add(i, builder.const_i64(1))
        s0 = builder.store(l0, builder.gep(module.global_named("A"), idx1))
        l1 = builder.load(builder.gep(module.global_named("A"), idx1))
        idx2 = builder.add(i, builder.const_i64(2))
        s1 = builder.store(l1, builder.gep(module.global_named("A"), idx2))
        builder.ret()
        assert not bundle_is_schedulable_loads([l0, l1], s1, [s0, s1])
