"""Property-based tests for the Super-Node reordering machinery.

The central invariant of the whole paper: *every* sequence of legal leaf
placements and trunk swaps must preserve the lane's value.  Hypothesis
generates random chain shapes (random add/sub or mul/div trees) and random
move requests; the model must either refuse a move or preserve semantics.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import (
    F64,
    I64,
    VOID,
    Function,
    IRBuilder,
    Module,
    Opcode,
)
from repro.vectorizer import build_lane_chain
from repro.vectorizer.supernode import LaneChain


def _random_chain(seed: int, family: str, max_depth: int):
    """Build a random expression tree rooted at a binary op of `family`."""
    rng = random.Random(seed)
    module = Module("m")
    function = Function("f", [("i", I64)], VOID, fast_math=True)
    module.add_function(function)
    builder = IRBuilder(function.add_block("entry"))
    counter = [0]

    def fresh_leaf():
        counter[0] += 1
        name = f"L{counter[0]}"
        module.add_global(name, F64 if family == "fmul" else I64, 8)
        return builder.load(builder.gep(module.global_named(name), 0), name=name)

    ops = ("add", "sub") if family == "add" else ("fmul", "fdiv")

    def grow(depth):
        if depth <= 0 or (depth < max_depth and rng.random() < 0.3):
            return fresh_leaf()
        op = rng.choice(ops)
        lhs = grow(depth - 1)
        rhs = grow(depth - 1)
        return getattr(builder, op)(lhs, rhs)

    # force a binary root of the right family with at least one nested op
    op = rng.choice(ops)
    lhs = getattr(builder, rng.choice(ops))(grow(max_depth - 2), grow(max_depth - 2))
    root = getattr(builder, op)(lhs, grow(max_depth - 1))
    builder.store(
        root,
        builder.gep(module.global_named(fresh_leaf().name), 1),
    )
    builder.ret()
    return root


def _env_for(chain: LaneChain, rng: random.Random, multiplicative: bool):
    lo, hi = (0.5, 2.0) if multiplicative else (-50, 50)
    env = {}
    for value in chain.leaf_values():
        if id(value) not in env:
            env[id(value)] = rng.uniform(lo, hi)
    return env


def _values_close(a: float, b: float, multiplicative: bool) -> bool:
    if multiplicative:
        return math.isclose(a, b, rel_tol=1e-9)
    return math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-9)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    family=st.sampled_from(["add", "fmul"]),
    target_index=st.integers(0, 20),
    leaf_index=st.integers(0, 20),
)
def test_place_leaf_preserves_semantics(seed, family, target_index, leaf_index):
    root = _random_chain(seed, family, max_depth=4)
    chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
    if chain is None:
        return  # degenerate shape: nothing to test
    slots = chain.slots()
    target = slots[target_index % len(slots)]
    leaves = chain.leaf_values()
    leaf = leaves[leaf_index % len(leaves)]
    rng = random.Random(seed + 1)
    env = _env_for(chain, rng, multiplicative=(family == "fmul"))
    before = chain.evaluate(env)
    moved = chain.place_leaf(leaf, target)
    after = chain.evaluate(env)
    assert _values_close(before, after, family == "fmul")
    if moved:
        assert chain.leaf_at(target).value is leaf


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    family=st.sampled_from(["add", "fmul"]),
    pick=st.integers(0, 50),
)
def test_trunk_swap_preserves_semantics_and_apos(seed, family, pick):
    root = _random_chain(seed, family, max_depth=4)
    chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
    if chain is None or chain.size() < 2:
        return
    paths = [path for path, _ in chain.trunks()]
    rng = random.Random(seed + 2)
    a = paths[pick % len(paths)]
    b = paths[(pick // len(paths) + 1) % len(paths)]
    env = _env_for(chain, rng, multiplicative=(family == "fmul"))
    before_value = chain.evaluate(env)
    before_apos = {
        id(chain.leaf_at(slot)): chain.slot_apo(slot) for slot in chain.slots()
    }
    swapped = chain.try_swap_trunks(a, b)
    after_value = chain.evaluate(env)
    assert _values_close(before_value, after_value, family == "fmul")
    if swapped:
        after_apos = {
            id(chain.leaf_at(slot)): chain.slot_apo(slot) for slot in chain.slots()
        }
        # leaves moved but every leaf object's APO must be unchanged
        assert before_apos == after_apos


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), family=st.sampled_from(["add", "fmul"]))
def test_signed_terms_invariant_under_any_legal_move_sequence(seed, family):
    """The multiset of (APO, leaf) pairs fully determines the lane's value;
    legal moves may permute it but never change it."""
    root = _random_chain(seed, family, max_depth=4)
    chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
    if chain is None:
        return
    def term_key(chain):
        return sorted(
            (apo, id(value)) for apo, value in chain.signed_terms()
        )
    before = term_key(chain)
    rng = random.Random(seed + 3)
    slots = chain.slots()
    leaves = chain.leaf_values()
    for _ in range(5):
        leaf = rng.choice(leaves)
        target = rng.choice(slots)
        chain.place_leaf(leaf, target)
    assert term_key(chain) == before


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_clone_isolation(seed):
    root = _random_chain(seed, "add", max_depth=3)
    chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
    if chain is None:
        return
    rng = random.Random(seed)
    env = _env_for(chain, rng, multiplicative=False)
    copy = chain.clone()
    before = copy.evaluate(env)
    slots = chain.slots()
    chain.swap_leaves(slots[0], slots[-1])  # raw, possibly illegal
    assert copy.evaluate(env) == before
