"""Run-history tests: the sqlite store, MAD anomaly gating with the
relative fallback for deterministic series, trend rendering, and the
``repro history`` CLI gate fed by ``repro bench --history-db``."""

import pytest

from repro.cli import main
from repro.observe.history import (
    Anomaly,
    RunHistory,
    check_history,
    check_series,
    config_hash,
    metric_direction,
    render_trend_table,
    sparkline,
)


@pytest.fixture
def db(tmp_path):
    return str(tmp_path / "history.db")


class TestRunHistory:
    def test_record_and_roundtrip(self, db):
        with RunHistory(db) as history:
            first = history.record(
                kind="bench",
                metrics={"bench.total_cycles.SN-SLP": 2435.5},
                payload={"note": "seed"},
                git_rev="abc1234",
                config={"kernel": "motiv-leaf-reorder"},
            )
            history.record(
                kind="bench",
                metrics={"bench.total_cycles.SN-SLP": 2435.5},
                git_rev="abc1234",
            )
        with RunHistory(db) as history:
            runs = history.runs(kind="bench")
            assert [run.id for run in runs] == [first, first + 1]
            assert runs[0].git_rev == "abc1234"
            assert runs[0].payload == {"note": "seed"}
            assert runs[0].metrics["bench.total_cycles.SN-SLP"] == 2435.5
            series = history.series("bench.total_cycles.SN-SLP", kind="bench")
            assert [value for _, value in series] == [2435.5, 2435.5]
            assert history.metric_names() == ["bench.total_cycles.SN-SLP"]

    def test_non_finite_samples_dropped(self, db):
        with RunHistory(db) as history:
            history.record(
                kind="bench",
                metrics={
                    "good": 1.0,
                    "nan": float("nan"),
                    "inf": float("inf"),
                    "text": "not-a-number",
                },
            )
            assert history.metric_names() == ["good"]

    def test_kind_filter(self, db):
        with RunHistory(db) as history:
            history.record(kind="bench", metrics={"m": 1.0})
            history.record(kind="fuzz", metrics={"m": 2.0})
            assert len(history.runs(kind="bench")) == 1
            assert [v for _, v in history.series("m", kind="fuzz")] == [2.0]


class TestConfigHash:
    def test_stable_and_order_independent(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})
        assert len(config_hash({})) == 12


class TestMetricDirection:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("bench.total_cycles.SN-SLP", "lower"),
            ("phase.vectorize.seconds.p99", "lower"),
            ("parallel.overhead_seconds", "lower"),
            ("bench.geomean_speedup.SN-SLP", "higher"),
            ("cache.hit_rate", "higher"),
            ("fuzz.programs_per_sec", "higher"),
            ("slp.nodes-formed", "any"),
        ],
    )
    def test_inference(self, name, expected):
        assert metric_direction(name) == expected


class TestCheckSeries:
    def test_short_series_never_flags(self):
        assert check_series("x.cycles", [100.0, 120.0]) is None

    def test_flat_history_passes_when_unchanged(self):
        assert check_series("x.cycles", [100.0, 100.0, 100.0]) is None

    def test_flat_history_flags_20_percent_cycle_regression(self):
        anomaly = check_series("x.cycles", [100.0, 100.0, 120.0])
        assert isinstance(anomaly, Anomaly)
        assert anomaly.latest == 120.0
        assert "flat history" in anomaly.detail

    def test_cycle_improvement_never_flags(self):
        assert check_series("x.cycles", [100.0, 100.0, 50.0]) is None

    def test_speedup_drop_flags_and_rise_passes(self):
        assert check_series("geomean_speedup", [1.8, 1.8, 1.4]) is not None
        assert check_series("geomean_speedup", [1.8, 1.8, 2.4]) is None

    def test_small_relative_drift_tolerated(self):
        assert check_series("x.cycles", [100.0, 100.0, 103.0]) is None

    def test_mad_path_flags_large_outlier(self):
        values = [100.0, 101.0, 99.0, 100.0, 100.5, 200.0]
        anomaly = check_series("x.cycles", values)
        assert anomaly is not None
        assert "robust z" in anomaly.detail

    def test_mad_path_tolerates_normal_scatter(self):
        assert check_series("x.cycles", [100.0, 101.0, 99.0, 100.5]) is None

    def test_undirected_metric_flags_both_ways(self):
        assert check_series("nodes", [10.0, 10.0, 20.0]) is not None
        assert check_series("nodes", [10.0, 10.0, 5.0]) is not None


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_uses_middle_block(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"

    def test_range_maps_to_blocks(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁" and line[1] == "█"


class TestCheckHistoryAndRendering:
    def test_check_history_flags_only_regressed_series(self, db):
        with RunHistory(db) as history:
            for cycles in (100.0, 100.0, 100.0):
                history.record(
                    kind="bench",
                    metrics={"k.cycles": cycles, "k.speedup": 1.8},
                )
            history.record(kind="bench", metrics={"k.cycles": 120.0})
            anomalies = check_history(history, kind="bench")
            assert [a.metric for a in anomalies] == ["k.cycles"]

    def test_trend_table_lists_metrics(self, db):
        with RunHistory(db) as history:
            history.record(kind="bench", metrics={"k.cycles": 100.0})
            history.record(kind="bench", metrics={"k.cycles": 110.0})
            table = render_trend_table(history, kind="bench")
        assert "k.cycles" in table
        assert "+10.0%" in table


class TestHistoryCLI:
    #: deterministic bench series (pure functions of the code, no wall
    #: clock) — what the CI gate checks
    GATED = ["bench.total_cycles.SN-SLP", "bench.geomean_speedup.SN-SLP"]

    def _seed(self, db, runs=3):
        for _ in range(runs):
            assert main(
                ["bench", "--kernel", "motiv-leaf-reorder", "--jobs", "1",
                 "--history-db", db]
            ) == 0

    def _gate(self, db):
        argv = ["history", "--db", db, "--check", "--kind", "bench"]
        for metric in self.GATED:
            argv += ["--metric", metric]
        return main(argv)

    def test_missing_db_is_usage_error(self, tmp_path, capsys):
        assert main(["history", "--db", str(tmp_path / "absent.db")]) == 2

    def test_unmodified_trajectory_passes_gate(self, db, capsys):
        self._seed(db)
        assert self._gate(db) == 0
        assert "no regressions" in capsys.readouterr().err

    def test_synthetic_20_percent_cycle_regression_trips_gate(self, db, capsys):
        self._seed(db)
        with RunHistory(db) as history:
            (_, baseline), = history.series(
                "bench.total_cycles.SN-SLP", kind="bench", limit=1
            )
            history.record(
                kind="bench",
                metrics={"bench.total_cycles.SN-SLP": baseline * 1.2},
            )
        assert self._gate(db) == 6
        err = capsys.readouterr().err
        assert "bench.total_cycles.SN-SLP" in err

    def test_improvement_passes_gate(self, db):
        self._seed(db)
        with RunHistory(db) as history:
            (_, baseline), = history.series(
                "bench.total_cycles.SN-SLP", kind="bench", limit=1
            )
            history.record(
                kind="bench",
                metrics={"bench.total_cycles.SN-SLP": baseline * 0.8},
            )
        assert self._gate(db) == 0

    def test_json_dump(self, db, capsys):
        self._seed(db, runs=1)
        assert main(["history", "--db", db, "--json"]) == 0
        out = capsys.readouterr().out
        assert '"bench.total_cycles.SN-SLP"' in out
