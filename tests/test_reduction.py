"""Horizontal-reduction vectorization tests (-slp-vectorize-hor)."""

import math
import random

import pytest

from repro.interp import Interpreter
from repro.ir import (
    F64,
    I64,
    VOID,
    Constant,
    Function,
    IRBuilder,
    Module,
    Opcode,
    eliminate_dead_code,
    verify_module,
)
from repro.machine import DEFAULT_TARGET, SCALAR
from repro.vectorizer import (
    LSLP_CONFIG,
    O3_CONFIG,
    SLP_CONFIG,
    SNSLP_CONFIG,
    compile_module,
)
from repro.vectorizer.reduction import (
    MIN_REDUCTION_LEAVES,
    ReductionCandidate,
    _order_group,
    find_reduction_candidates,
    plan_reduction,
)
from repro.vectorizer.slp import SLPVectorizer, _GraphBuilder


def _straightline_module(chain_builder, arrays="BWKS"):
    module = Module("red")
    for name in arrays:
        module.add_global(name, F64, 256)
    function = Function("kernel", [("i", I64)], VOID, fast_math=True)
    module.add_function(function)
    builder = IRBuilder(function.add_block("entry"))
    i = function.arguments[0]

    def load(name, off=0):
        idx = builder.add(i, builder.const_i64(off)) if off else i
        return builder.load(builder.gep(module.global_named(name), idx))

    root = chain_builder(builder, load)
    builder.store(root, builder.gep(module.global_named("S"), i))
    builder.ret()
    verify_module(module)
    return module, function, root


def _sum_of_loads(n):
    def build(b, load):
        acc = load("B", 0)
        for k in range(1, n):
            acc = b.fadd(acc, load("B", k))
        return acc

    return build


def _dot_product(n):
    def build(b, load):
        acc = b.fmul(load("B", 0), load("W", 0))
        for k in range(1, n):
            acc = b.fadd(acc, b.fmul(load("B", k), load("W", k)))
        return acc

    return build


class TestDetection:
    def test_sum_chain_detected(self):
        module, function, root = _straightline_module(_sum_of_loads(4))
        candidates = find_reduction_candidates(
            function.entry, allow_inverse=True, fast_math=True, consumed_ids=set()
        )
        assert len(candidates) == 1
        assert candidates[0].root is root
        assert candidates[0].leaf_count == 4
        assert not candidates[0].minus_leaves

    def test_short_chain_rejected(self):
        module, function, _ = _straightline_module(_sum_of_loads(3))
        candidates = find_reduction_candidates(
            function.entry, allow_inverse=True, fast_math=True, consumed_ids=set()
        )
        assert candidates == []
        assert MIN_REDUCTION_LEAVES == 4

    def test_interior_nodes_not_roots(self):
        module, function, root = _straightline_module(_sum_of_loads(6))
        candidates = find_reduction_candidates(
            function.entry, allow_inverse=True, fast_math=True, consumed_ids=set()
        )
        assert [c.root for c in candidates] == [root]

    def test_signed_chain_needs_inverse_permission(self):
        def build(b, load):
            acc = b.fadd(load("B", 0), load("B", 1))
            acc = b.fsub(acc, load("K", 0))
            return b.fadd(acc, b.fadd(load("B", 2), load("B", 3)))

        module, function, _ = _straightline_module(build)
        without = find_reduction_candidates(
            function.entry, allow_inverse=False, fast_math=True, consumed_ids=set()
        )
        with_inverse = find_reduction_candidates(
            function.entry, allow_inverse=True, fast_math=True, consumed_ids=set()
        )
        assert without == []
        assert len(with_inverse) == 1
        assert len(with_inverse[0].minus_leaves) == 1

    def test_consumed_roots_skipped(self):
        module, function, root = _straightline_module(_sum_of_loads(4))
        candidates = find_reduction_candidates(
            function.entry, allow_inverse=True, fast_math=True,
            consumed_ids={id(root)},
        )
        assert candidates == []

    def test_fast_math_required_for_float(self):
        module, function, _ = _straightline_module(_sum_of_loads(4))
        candidates = find_reduction_candidates(
            function.entry, allow_inverse=True, fast_math=False, consumed_ids=set()
        )
        assert candidates == []


class TestOrdering:
    def test_reversed_loads_get_straightened(self):
        module, function, _ = _straightline_module(_sum_of_loads(4))
        vectorizer = SLPVectorizer(DEFAULT_TARGET, SNSLP_CONFIG)
        candidate = find_reduction_candidates(
            function.entry, allow_inverse=True, fast_math=True, consumed_ids=set()
        )[0]
        ordered = _order_group(candidate.plus_leaves, vectorizer.scorer)
        from repro.ir import address_of

        offsets = [address_of(v).offset for v in ordered]
        assert offsets == sorted(offsets)

    def test_small_groups_pass_through(self):
        vectorizer = SLPVectorizer(DEFAULT_TARGET, SNSLP_CONFIG)
        values = [Constant(F64, 1.0), Constant(F64, 2.0)]
        assert _order_group(values, vectorizer.scorer) == values


class TestPlanning:
    def _plan(self, chain_builder, config=SNSLP_CONFIG):
        module, function, _ = _straightline_module(chain_builder)
        vectorizer = SLPVectorizer(DEFAULT_TARGET, config)
        candidate = find_reduction_candidates(
            function.entry,
            allow_inverse=config.enable_supernode,
            fast_math=True,
            consumed_ids=set(),
        )[0]
        builder = _GraphBuilder(vectorizer, (), function, anchor=candidate.root)
        return plan_reduction(
            candidate, builder, DEFAULT_TARGET.isa, DEFAULT_TARGET.cost_model
        )

    def test_dot_product_profitable(self):
        plan = self._plan(_dot_product(4))
        assert plan is not None
        assert plan.vector_width == 4
        assert plan.total_cost < 0
        assert not plan.leftovers

    def test_wide_sum_uses_multiple_chunks(self):
        plan = self._plan(_sum_of_loads(8))
        assert plan is not None
        assert len(plan.chunks) == 2
        assert plan.vector_width == 4

    def test_scalar_target_yields_no_plan(self):
        module, function, _ = _straightline_module(_dot_product(4))
        vectorizer = SLPVectorizer(SCALAR, SNSLP_CONFIG)
        candidate = find_reduction_candidates(
            function.entry, allow_inverse=True, fast_math=True, consumed_ids=set()
        )[0]
        builder = _GraphBuilder(vectorizer, (), function, anchor=candidate.root)
        assert (
            plan_reduction(candidate, builder, SCALAR.isa, SCALAR.cost_model)
            is None
        )

    def test_mismatched_chunk_width_demoted(self):
        def build(b, load):
            # 4 '+' products and 2 '-' products: widths 4 and 2
            acc = b.fmul(load("B", 0), load("W", 0))
            for k in range(1, 4):
                acc = b.fadd(acc, b.fmul(load("B", k), load("W", k)))
            acc = b.fsub(acc, b.fmul(load("K", 0), load("K", 1)))
            return b.fsub(acc, b.fmul(load("K", 2), load("K", 3)))

        plan = self._plan(build)
        assert plan is not None
        assert plan.vector_width == 4
        assert len(plan.chunks) == 1
        assert len(plan.leftovers) == 2  # the demoted '-' products


class TestEndToEnd:
    def _run(self, module, inputs):
        interp = Interpreter(module)
        for name, values in inputs.items():
            interp.write_global(name, values)
        interp.run("kernel", [0])
        return interp.read_global("S")

    def _check(self, chain_builder, configs, expect_vectorized):
        module, _, _ = _straightline_module(chain_builder)
        rng = random.Random(11)
        inputs = {
            name: [rng.uniform(-2, 2) for _ in range(256)] for name in "BWK"
        }
        oracle = self._run(
            compile_module(module, O3_CONFIG, DEFAULT_TARGET).module, inputs
        )
        for config in configs:
            compiled = compile_module(module, config, DEFAULT_TARGET)
            out = self._run(compiled.module, inputs)
            for x, y in zip(out, oracle):
                assert math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-12)
            reductions = [
                g for g in compiled.report.all_graphs() if g.kind == "reduction"
            ]
            got = any(g.vectorized for g in reductions)
            assert got == expect_vectorized[config.name], config.name

    def test_pure_sum_vectorizes_everywhere(self):
        self._check(
            _sum_of_loads(8),
            (SLP_CONFIG, LSLP_CONFIG, SNSLP_CONFIG),
            {"SLP": True, "LSLP": True, "SN-SLP": True},
        )

    def test_signed_reduction_needs_supernode(self):
        def build(b, load):
            acc = b.fmul(load("B", 0), load("W", 0))
            for k in range(1, 4):
                acc = b.fadd(acc, b.fmul(load("B", k), load("W", k)))
            return b.fsub(acc, load("K", 0))

        self._check(
            build,
            (SLP_CONFIG, LSLP_CONFIG, SNSLP_CONFIG),
            {"SLP": False, "LSLP": False, "SN-SLP": True},
        )

    def test_reduction_ir_verifies_and_scalar_chain_dies(self):
        module, function, root = _straightline_module(_dot_product(4))
        compiled = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        verify_module(compiled.module)
        compiled_function = compiled.module.function("kernel")
        opcodes = [inst.opcode for inst in compiled_function.entry]
        assert Opcode.SHUFFLEVECTOR in opcodes
        assert Opcode.EXTRACTELEMENT in opcodes
        # the scalar fmul/fadd chain must be gone
        scalar_fmuls = [
            inst
            for inst in compiled_function.entry
            if inst.opcode is Opcode.FMUL and inst.type.is_scalar
        ]
        assert scalar_fmuls == []

    def test_reductions_can_be_disabled(self):
        import dataclasses

        no_hor = dataclasses.replace(
            SNSLP_CONFIG, name="SN-SLP-nohor", enable_reductions=False
        )
        module, _, _ = _straightline_module(_dot_product(4))
        compiled = compile_module(module, no_hor, DEFAULT_TARGET)
        assert [g for g in compiled.report.all_graphs() if g.kind == "reduction"] == []

    def test_integer_reduction_bitexact(self):
        module = Module("ired")
        for name in ("B", "S"):
            module.add_global(name, I64, 256)
        function = Function("kernel", [("i", I64)], VOID, fast_math=False)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        i = function.arguments[0]

        def load(off):
            idx = builder.add(i, builder.const_i64(off)) if off else i
            return builder.load(builder.gep(module.global_named("B"), idx))

        # eight consecutive '+' loads, then two subtracted ones: the '+'
        # group vectorizes as two 4-wide chunks, the '-' pair stays scalar
        acc = load(0)
        for k in range(1, 8):
            acc = builder.add(acc, load(k))
        for k in (8, 9):
            acc = builder.sub(acc, load(k))
        builder.store(acc, builder.gep(module.global_named("S"), i))
        builder.ret()
        verify_module(module)

        rng = random.Random(5)
        inputs = {"B": [rng.randint(-10**9, 10**9) for _ in range(256)]}

        def run(mod):
            interp = Interpreter(mod)
            interp.write_global("B", inputs["B"])
            interp.run("kernel", [0])
            return interp.read_global("S")

        oracle = run(compile_module(module, O3_CONFIG, DEFAULT_TARGET).module)
        compiled = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        assert any(
            g.vectorized for g in compiled.report.all_graphs() if g.kind == "reduction"
        )
        assert run(compiled.module) == oracle
