"""Kernel suite and composite program tests."""

import random

import pytest

from repro.interp import Interpreter
from repro.ir import verify_module
from repro.kernels import all_kernels, kernel_named, kernels_by_origin, table1_rows
from repro.kernels.programs import PROGRAMS, Program, add_bulk_function, program_named
from repro.machine import DEFAULT_TARGET
from repro.sim import simulate
from repro.vectorizer import ALL_CONFIGS, O3_CONFIG, SNSLP_CONFIG, compile_module


class TestRegistry:
    def test_suite_is_nonempty_and_unique(self):
        kernels = all_kernels()
        assert len(kernels) >= 12
        names = [k.name for k in kernels]
        assert len(names) == len(set(names))

    def test_lookup(self):
        assert kernel_named("milc-su3-cmul").origin.startswith("433.milc")
        with pytest.raises(KeyError):
            kernel_named("does-not-exist")

    def test_by_origin(self):
        assert len(kernels_by_origin("SPEC CPU2006")) >= 7
        assert kernels_by_origin("motivating")

    def test_table1_rows_have_required_columns(self):
        rows = table1_rows()
        assert len(rows) == len(all_kernels())
        for row in rows:
            assert set(row) == {"kernel", "origin", "pattern", "description"}


class TestKernelModules:
    @pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.name)
    def test_build_verifies(self, kernel):
        verify_module(kernel.build())

    @pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.name)
    def test_builds_are_independent(self, kernel):
        a = kernel.build()
        b = kernel.build()
        assert a is not b
        assert a.function(kernel.function) is not b.function(kernel.function)

    @pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.name)
    def test_inputs_deterministic(self, kernel):
        one = kernel.make_inputs(random.Random(5))
        two = kernel.make_inputs(random.Random(5))
        assert one == two

    @pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.name)
    def test_inputs_cover_output_globals(self, kernel):
        module = kernel.build()
        for name in kernel.output_globals:
            assert name in module.globals

    @pytest.mark.parametrize("kernel", all_kernels(), ids=lambda k: k.name)
    def test_runs_under_interpreter(self, kernel):
        module = kernel.build()
        interp = Interpreter(module)
        for name, values in kernel.make_inputs(random.Random(1)).items():
            interp.write_global(name, values)
        interp.run(kernel.function, [min(kernel.trip_count, 16)])


class TestPrograms:
    def test_six_spec_benchmarks(self):
        names = [p.name for p in PROGRAMS]
        assert names == [
            "433.milc",
            "444.namd",
            "447.dealII",
            "450.soplex",
            "453.povray",
            "482.sphinx3",
        ]

    def test_lookup(self):
        assert program_named("433.milc").kernel.name == "milc-su3-cmul"
        with pytest.raises(KeyError):
            program_named("429.mcf")

    def test_build_contains_kernel_and_bulk(self):
        module = program_named("433.milc").build()
        verify_module(module)
        assert "kernel" in module.functions
        assert "bulk" in module.functions
        assert "BULK" in module.globals

    def test_bulk_is_never_vectorized(self):
        module = program_named("433.milc").build()
        compiled = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        bulk_graphs = [
            g
            for f in compiled.report.functions
            if f.name == "bulk"
            for g in f.graphs
            if g.vectorized
        ]
        assert bulk_graphs == []

    def test_bulk_cycles_identical_across_configs(self):
        program = program_named("444.namd")
        cycles = set()
        for config in (O3_CONFIG, SNSLP_CONFIG):
            compiled = compile_module(program.build(), config, DEFAULT_TARGET)
            sim = simulate(compiled.module, "bulk", DEFAULT_TARGET, [512])
            cycles.add(sim.cycles)
        assert len(cycles) == 1

    def test_bulk_recurrence_semantics(self):
        module = program_named("433.milc").build()
        interp = Interpreter(module)
        interp.write_global("BULK", [1.0] * 4096)
        interp.run("bulk", [3])
        out = interp.read_global("BULK")
        assert out[0] == 1.0
        assert out[1] == pytest.approx(1.0 * 0.875 + 1.0)
        assert out[2] == pytest.approx(out[1] * 0.875 + 1.0)

    def test_kernel_fractions_small(self):
        for program in PROGRAMS:
            assert 0 < program.kernel_fraction < 0.1
