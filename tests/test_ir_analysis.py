"""Address analysis and aliasing tests."""

import pytest

from repro.ir import (
    F64,
    I64,
    VOID,
    Constant,
    Function,
    IRBuilder,
    Module,
    address_of,
    decompose_pointer,
    may_alias,
    pointer_to,
)
from repro.ir.analysis import memory_instructions_between, sort_by_offset
from repro.ir.values import Argument


def _setup():
    module = Module("m")
    a = module.add_global("A", F64, 64)
    b = module.add_global("B", F64, 64)
    function = Function("f", [("i", I64), ("p", pointer_to(F64))], VOID)
    module.add_function(function)
    builder = IRBuilder(function.add_block("entry"))
    return module, a, b, function, builder


class TestDecomposition:
    def test_constant_index(self):
        _, a, _, _, builder = _setup()
        load = builder.load(builder.gep(a, 5))
        info = address_of(load)
        assert info.base is a
        assert info.symbol is None
        assert info.offset == 5
        assert info.element_size == 8

    def test_symbolic_index(self):
        _, a, _, function, builder = _setup()
        i = function.arguments[0]
        info = address_of(builder.load(builder.gep(a, i)))
        assert info.symbol is i
        assert info.offset == 0

    def test_symbol_plus_constant(self):
        _, a, _, function, builder = _setup()
        i = function.arguments[0]
        idx = builder.add(i, builder.const_i64(3))
        info = address_of(builder.load(builder.gep(a, idx)))
        assert info.symbol is i
        assert info.offset == 3

    def test_constant_plus_symbol(self):
        _, a, _, function, builder = _setup()
        i = function.arguments[0]
        idx = builder.add(builder.const_i64(2), i)
        info = address_of(builder.load(builder.gep(a, idx)))
        assert info.symbol is i and info.offset == 2

    def test_symbol_minus_constant(self):
        _, a, _, function, builder = _setup()
        i = function.arguments[0]
        idx = builder.sub(i, builder.const_i64(1))
        info = address_of(builder.load(builder.gep(a, idx)))
        assert info.symbol is i and info.offset == -1

    def test_opaque_index_is_its_own_symbol(self):
        _, a, _, function, builder = _setup()
        i = function.arguments[0]
        idx = builder.mul(i, builder.const_i64(2))
        info = address_of(builder.load(builder.gep(a, idx)))
        assert info.symbol is idx and info.offset == 0

    def test_bare_pointer_argument(self):
        _, _, _, function, builder = _setup()
        p = function.arguments[1]
        info = address_of(builder.load(p))
        assert info.base is p and info.offset == 0

    def test_store_address(self):
        _, a, _, _, builder = _setup()
        store = builder.store(Constant(F64, 1.0), builder.gep(a, 2))
        assert address_of(store).offset == 2

    def test_non_memory_instruction(self):
        _, _, _, _, builder = _setup()
        inst = builder.add(Constant(I64, 1), Constant(I64, 2))
        assert address_of(inst) is None

    def test_decompose_non_pointer(self):
        assert decompose_pointer(Constant(I64, 3)) is None


class TestConsecutive:
    def test_consecutive(self):
        _, a, _, function, builder = _setup()
        i = function.arguments[0]
        l0 = builder.load(builder.gep(a, i))
        l1 = builder.load(builder.gep(a, builder.add(i, builder.const_i64(1))))
        assert address_of(l0).is_consecutive_with(address_of(l1))
        assert not address_of(l1).is_consecutive_with(address_of(l0))

    def test_different_bases_not_consecutive(self):
        _, a, b, function, builder = _setup()
        i = function.arguments[0]
        la = builder.load(builder.gep(a, i))
        lb = builder.load(builder.gep(b, builder.add(i, builder.const_i64(1))))
        assert not address_of(la).is_consecutive_with(address_of(lb))

    def test_distance(self):
        _, a, _, function, builder = _setup()
        i = function.arguments[0]
        l0 = builder.load(builder.gep(a, i))
        l3 = builder.load(builder.gep(a, builder.add(i, builder.const_i64(3))))
        assert address_of(l0).distance_to(address_of(l3)) == 3
        assert address_of(l3).distance_to(address_of(l0)) == -3

    def test_distance_incomparable(self):
        _, a, b, _, builder = _setup()
        la = builder.load(builder.gep(a, 0))
        lb = builder.load(builder.gep(b, 1))
        assert address_of(la).distance_to(address_of(lb)) is None

    def test_sort_by_offset(self):
        _, a, _, function, builder = _setup()
        i = function.arguments[0]
        infos = []
        for off in (2, 0, 1):
            idx = builder.add(i, builder.const_i64(off))
            infos.append(address_of(builder.load(builder.gep(a, idx))))
        assert sort_by_offset(infos) == [1, 2, 0]


class TestAliasing:
    def test_distinct_globals_never_alias(self):
        _, a, b, _, builder = _setup()
        ia = address_of(builder.load(builder.gep(a, 0)))
        ib = address_of(builder.load(builder.gep(b, 0)))
        assert not may_alias(ia, ib)

    def test_same_slot_aliases(self):
        _, a, _, function, builder = _setup()
        i = function.arguments[0]
        x = address_of(builder.load(builder.gep(a, i)))
        y = address_of(builder.load(builder.gep(a, i)))
        assert may_alias(x, y)

    def test_same_base_distinct_offsets_do_not_alias(self):
        _, a, _, function, builder = _setup()
        i = function.arguments[0]
        x = address_of(builder.load(builder.gep(a, i)))
        idx = builder.add(i, builder.const_i64(1))
        y = address_of(builder.load(builder.gep(a, idx)))
        assert not may_alias(x, y)

    def test_unknown_symbols_conservatively_alias(self):
        _, a, _, function, builder = _setup()
        i = function.arguments[0]
        doubled = builder.mul(i, builder.const_i64(2))
        x = address_of(builder.load(builder.gep(a, i)))
        y = address_of(builder.load(builder.gep(a, doubled)))
        assert may_alias(x, y)

    def test_pointer_argument_vs_global_aliases(self):
        _, a, _, function, builder = _setup()
        p = function.arguments[1]
        x = address_of(builder.load(p))
        y = address_of(builder.load(builder.gep(a, 0)))
        assert may_alias(x, y)


class TestMemoryBetween:
    def test_collects_only_memory_ops(self):
        _, a, _, function, builder = _setup()
        first = builder.load(builder.gep(a, 0))
        builder.add(Constant(I64, 1), Constant(I64, 2))
        mid = builder.store(Constant(F64, 0.0), builder.gep(a, 1))
        last = builder.load(builder.gep(a, 2))
        between = memory_instructions_between(first, last)
        assert between == [mid]

    def test_blocks_must_match(self):
        _, a, _, function, builder = _setup()
        first = builder.load(builder.gep(a, 0))
        other_block = function.add_block("other")
        other_builder = IRBuilder(other_block)
        last = other_builder.load(other_builder.gep(a, 1))
        with pytest.raises(ValueError):
            memory_instructions_between(first, last)
