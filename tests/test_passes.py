"""Tests for the mid-end passes: simplify and loop unrolling."""

import random

import pytest

from repro.frontend import compile_source
from repro.interp import Interpreter, run_kernel
from repro.ir import (
    F64,
    I64,
    VOID,
    Constant,
    Function,
    IRBuilder,
    Module,
    Opcode,
    verify_module,
)
from repro.machine import DEFAULT_TARGET
from repro.passes import (
    find_canonical_loops,
    simplify_function,
    simplify_module,
    unroll_function,
    unroll_module,
)
from repro.sim import simulate
from repro.vectorizer import O3_CONFIG, SNSLP_CONFIG, compile_module


def _func(fast_math=True):
    module = Module("m")
    module.add_global("A", F64, 16)
    module.add_global("N", I64, 16)
    function = Function("f", [("x", F64), ("n", I64)], VOID, fast_math=fast_math)
    module.add_function(function)
    builder = IRBuilder(function.add_block("entry"))
    return module, function, builder


class TestSimplify:
    def test_constant_folding(self):
        module, function, b = _func()
        folded = b.add(Constant(I64, 2), Constant(I64, 3))
        user = b.mul(folded, function.arguments[1])
        b.store(b.sitofp(user, F64), b.gep(module.global_named("A"), 0))
        b.ret()
        simplify_function(function)
        # folded to 5, then canonicalized to the RHS of the commutative mul
        assert isinstance(user.rhs, Constant) and user.rhs.value == 5

    def test_add_zero(self):
        module, function, b = _func()
        x, n = function.arguments
        y = b.fadd(x, Constant(F64, 0.0))
        b.store(y, b.gep(module.global_named("A"), 0))
        b.ret()
        simplify_function(function)
        stores = [i for i in function.entry if i.opcode is Opcode.STORE]
        assert stores[0].value is x

    def test_float_identities_need_fast_math(self):
        module, function, b = _func(fast_math=False)
        x, _ = function.arguments
        y = b.fadd(x, Constant(F64, 0.0))
        b.store(y, b.gep(module.global_named("A"), 0))
        b.ret()
        simplify_function(function)
        # x + 0.0 is NOT exact without nsz (x = -0.0), so it must survive
        stores = [i for i in function.entry if i.opcode is Opcode.STORE]
        assert stores[0].value is y

    def test_mul_one_and_div_one(self):
        module, function, b = _func()
        x, n = function.arguments
        a = b.fmul(x, Constant(F64, 1.0))
        c = b.fdiv(a, Constant(F64, 1.0))
        b.store(c, b.gep(module.global_named("A"), 0))
        b.ret()
        simplify_function(function)
        stores = [i for i in function.entry if i.opcode is Opcode.STORE]
        assert stores[0].value is x

    def test_integer_sub_self(self):
        module, function, b = _func()
        _, n = function.arguments
        z = b.sub(n, n)
        b.store(z, b.gep(module.global_named("N"), 0))
        b.ret()
        simplify_function(function)
        stores = [i for i in function.entry if i.opcode is Opcode.STORE]
        assert isinstance(stores[0].value, Constant)
        assert stores[0].value.value == 0

    def test_xor_self_and_shift_zero(self):
        module, function, b = _func()
        _, n = function.arguments
        z = b.xor(n, n)
        s = b.shl(n, Constant(I64, 0))
        b.store(b.add(z, s), b.gep(module.global_named("N"), 0))
        b.ret()
        simplify_function(function)
        # xor n,n -> 0; shl n,0 -> n; 0+n -> n
        stores = [i for i in function.entry if i.opcode is Opcode.STORE]
        assert stores[0].value is n

    def test_commutative_canonicalization(self):
        module, function, b = _func()
        _, n = function.arguments
        inst = b.add(Constant(I64, 7), n)
        b.store(inst, b.gep(module.global_named("N"), 0))
        b.ret()
        simplify_function(function)
        assert inst.lhs is n
        assert isinstance(inst.rhs, Constant)

    def test_index_plus_zero_folds(self):
        # the frontend's `A[i+0]` lowers to add(i, 0); simplify removes it
        source = "double A[8]; double B[8];\nkernel k(n) { A[0+0] = B[0]; }"
        module = compile_source(source)
        removed = simplify_module(module)
        assert removed >= 0
        verify_module(module)

    def test_semantics_preserved_on_random_kernel(self):
        import sys

        sys.path.insert(0, "tests")
        from test_property_vectorizer import _inputs, _random_kernel, _run

        for seed in (3, 17, 99):
            module = _random_kernel(seed, 2, True)
            inputs = _inputs(seed, True)
            before = _run(module, inputs)
            simplify_module(module)
            verify_module(module)
            after = _run(module, inputs)
            assert before == after


LOOP_SOURCE = """
long A[256]; long B[256]; long C[256]; long D[256];
kernel k(n) {
  for (i = 0; i < n; i += 1) {
    A[i] = B[i] - C[i] + D[i];
  }
}
"""


class TestUnroll:
    def _module(self):
        return compile_source(LOOP_SOURCE)

    def test_canonical_loop_recognized(self):
        module = self._module()
        loops = find_canonical_loops(module.function("k"))
        assert len(loops) == 1
        assert loops[0].step == 1

    def test_unroll_verifies(self):
        module = self._module()
        assert unroll_module(module, factor=4) == 1
        verify_module(module)

    @pytest.mark.parametrize("n", [0, 1, 3, 4, 7, 16, 101])
    def test_unroll_semantics_all_trip_counts(self, n):
        inputs = {
            name: [random.Random(name).randint(-50, 50) for _ in range(256)]
            for name in "BCD"
        }
        expected = run_kernel(self._module(), "k", [n], inputs=inputs)["A"]
        unrolled = self._module()
        unroll_module(unrolled, factor=4)
        got = run_kernel(unrolled, "k", [n], inputs=inputs)["A"]
        assert got == expected

    def test_unroll_factor_one_is_noop(self):
        module = self._module()
        assert unroll_module(module, factor=1) == 0

    def test_unrolled_loop_not_rematched(self):
        # the unrolled header/body is not a canonical loop by our matcher
        # (guard uses i+offset), so repeated unrolling must not explode
        module = self._module()
        unroll_module(module, factor=2)
        function = module.function("k")
        loops = find_canonical_loops(function)
        # the remainder loop still matches; unrolling it again is legal
        for loop in loops:
            assert loop.step in (1, 2)

    def test_unroll_enables_vectorization(self):
        inputs = {
            name: [random.Random(name).randint(-50, 50) for _ in range(256)]
            for name in "BCD"
        }
        module = self._module()
        plain = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        assert len(plain.report.vectorized_graphs()) == 0
        unrolled = compile_module(
            module, SNSLP_CONFIG, DEFAULT_TARGET, unroll_factor=4
        )
        assert len(unrolled.report.vectorized_graphs()) >= 1
        base = simulate(
            compile_module(module, O3_CONFIG, DEFAULT_TARGET).module,
            "k", DEFAULT_TARGET, [200], inputs=inputs,
        )
        fast = simulate(
            unrolled.module, "k", DEFAULT_TARGET, [200], inputs=inputs
        )
        assert fast.globals_after["A"] == base.globals_after["A"]
        assert base.cycles / fast.cycles > 2.0

    def test_non_canonical_loop_untouched(self):
        # a loop with two phis is left alone
        module = Module("m")
        module.add_global("A", F64, 64)
        from repro.ir import CmpPredicate

        function = Function("f", [("n", I64)], VOID)
        module.add_function(function)
        entry = function.add_block("entry")
        header = function.add_block("header")
        body = function.add_block("body")
        done = function.add_block("done")
        b = IRBuilder(entry)
        b.br(header)
        b.position_at_end(header)
        i = b.phi(I64, "i")
        acc = b.phi(F64, "acc")
        cond = b.icmp(CmpPredicate.LT, i, function.arguments[0])
        b.condbr(cond, body, done)
        b.position_at_end(body)
        new_acc = b.fadd(acc, Constant(F64, 1.0))
        inc = b.add(i, b.const_i64(1))
        b.br(header)
        i.add_incoming(b.const_i64(0), entry)
        i.add_incoming(inc, body)
        acc.add_incoming(Constant(F64, 0.0), entry)
        acc.add_incoming(new_acc, body)
        b.position_at_end(done)
        b.store(acc, b.gep(module.global_named("A"), 0))
        b.ret()
        verify_module(module)
        assert unroll_module(module, factor=4) == 0


class TestUnrollProperty:
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=25, deadline=None)
    @given(
        factor=st.integers(2, 6),
        n=st.integers(0, 60),
        seed=st.integers(0, 1000),
    )
    def test_unroll_semantics_fuzzed(self, factor, n, seed):
        from repro.passes import unroll_module

        rng = random.Random(seed)
        inputs = {
            name: [rng.randint(-99, 99) for _ in range(256)] for name in "BCD"
        }
        expected = run_kernel(
            compile_source(LOOP_SOURCE), "k", [n], inputs=inputs
        )["A"]
        unrolled = compile_source(LOOP_SOURCE)
        unroll_module(unrolled, factor=factor)
        verify_module(unrolled)
        got = run_kernel(unrolled, "k", [n], inputs=inputs)["A"]
        assert got == expected
