"""Engine parity: the batched planned engine vs the scalar reference.

The contract under test is the PR 9 identity guarantee: for every
program both engines produce bit-identical cycle totals, per-opcode
charges, instruction counts, output buffers and oracle verdicts — the
engine choice is purely a throughput knob.  The matrix here runs the
whole kernel suite (unvectorized and under every configuration) plus
seeded fuzz programs, and then pins the edge semantics individually:
NaN propagation through intrinsics, trap messages, vector-lane bounds,
and the step watchdog firing at the exact same instruction.
"""

import math
import os
import struct

import pytest

from repro.fuzz import generate_program, random_spec, run_oracle
from repro.interp import (
    BatchedInterpreter,
    BudgetExceededError,
    Interpreter,
    Memory,
    MemoryError_,
    TrapError,
    default_engine,
    make_interpreter,
    plan_function,
    resolve_engine,
    set_default_engine,
)
from repro.ir import (
    F64,
    I64,
    VOID,
    CmpPredicate,
    Constant,
    Function,
    IRBuilder,
    Module,
    vector_of,
)
from repro.ir.types import pointer_to
from repro.kernels import all_kernels
from repro.kernels.seeding import derive_seed
from repro.machine import DEFAULT_TARGET
from repro.observe.session import CompilerSession, use_session
from repro.sim import simulate
from repro.vectorizer import ALL_CONFIGS, compile_module

import random


def _simulate_both(module, function, args, inputs=None):
    scalar = simulate(
        module, function, DEFAULT_TARGET, args, inputs=inputs, engine="scalar"
    )
    batched = simulate(
        module, function, DEFAULT_TARGET, args, inputs=inputs, engine="batched"
    )
    return scalar, batched


def _assert_identical(scalar, batched):
    assert scalar.cycles == batched.cycles
    assert scalar.instructions == batched.instructions
    assert scalar.per_opcode == batched.per_opcode
    assert scalar.return_value == batched.return_value
    assert scalar.globals_after.keys() == batched.globals_after.keys()
    for name in scalar.globals_after:
        a, b = scalar.globals_after[name], batched.globals_after[name]
        # bit-exact, including NaN payloads and signed zeros
        assert [struct.pack("<d", float(x)) if isinstance(x, float) else x
                for x in a] == \
               [struct.pack("<d", float(y)) if isinstance(y, float) else y
                for y in b], name


class TestEngineSelection:
    def test_resolve_and_default(self):
        assert resolve_engine(None) == default_engine()
        assert resolve_engine("scalar") == "scalar"
        assert resolve_engine("batched") == "batched"
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("jit")
        with pytest.raises(ValueError, match="unknown engine"):
            set_default_engine("jit")

    def test_set_default_engine_is_env_carried(self):
        before = os.environ.get("REPRO_ENGINE")
        try:
            set_default_engine("scalar")
            assert os.environ["REPRO_ENGINE"] == "scalar"
            assert default_engine() == "scalar"
            assert isinstance(make_interpreter(Module("m")), Interpreter)
            set_default_engine("batched")
            assert isinstance(make_interpreter(Module("m")), BatchedInterpreter)
        finally:
            if before is None:
                os.environ.pop("REPRO_ENGINE", None)
            else:
                os.environ["REPRO_ENGINE"] = before

    def test_invalid_env_falls_back(self):
        before = os.environ.get("REPRO_ENGINE")
        try:
            os.environ["REPRO_ENGINE"] = "nonsense"
            assert default_engine() in ("scalar", "batched")
        finally:
            if before is None:
                os.environ.pop("REPRO_ENGINE", None)
            else:
                os.environ["REPRO_ENGINE"] = before

    def test_batched_budget_alias_warns(self):
        module = _loop_module()
        with pytest.warns(DeprecationWarning, match="max_steps"):
            interp = BatchedInterpreter(module, instruction_budget=50)
        assert interp.instruction_budget == 50
        with pytest.raises(BudgetExceededError):
            interp.run("count", [10**9])


class TestIdentityMatrix:
    @pytest.mark.parametrize(
        "kernel", all_kernels(), ids=lambda k: k.name
    )
    def test_kernel_suite_unvectorized(self, kernel):
        module = kernel.build()
        inputs = kernel.make_inputs(random.Random(20190216))
        scalar, batched = _simulate_both(
            module, kernel.function, [kernel.trip_count], inputs
        )
        _assert_identical(scalar, batched)

    @pytest.mark.parametrize(
        "kernel", all_kernels(), ids=lambda k: k.name
    )
    def test_kernel_suite_all_configs(self, kernel):
        inputs = kernel.make_inputs(random.Random(20190216))
        for config in ALL_CONFIGS:
            compiled = compile_module(kernel.build(), config, DEFAULT_TARGET)
            scalar, batched = _simulate_both(
                compiled.module, kernel.function, [kernel.trip_count], inputs
            )
            _assert_identical(scalar, batched)

    def test_fuzz_program_verdicts(self):
        for index in range(6):
            spec = random_spec(derive_seed(0, f"engine-identity/{index}"))
            program = generate_program(spec)
            verdicts = {}
            for engine in ("scalar", "batched"):
                report = run_oracle(program, engine=engine)
                verdicts[engine] = (
                    report.reference_trapped,
                    [
                        (o.config, o.status, o.detail, o.cycles,
                         o.vectorized_graphs)
                        for o in report.outcomes
                    ],
                )
            assert verdicts["scalar"] == verdicts["batched"], spec


class TestEdgeSemantics:
    def _unary_intrinsic(self, callee):
        module = Module("m")
        function = Function("f", [("x", F64)], F64)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        builder.ret(builder.call(callee, [function.arguments[0]]))
        return module

    def _binary_intrinsic(self, callee):
        module = Module("m")
        function = Function("f", [("a", F64), ("b", F64)], F64)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        builder.ret(builder.call(callee, list(function.arguments)))
        return module

    @pytest.mark.parametrize("callee", ["fmin", "fmax"])
    @pytest.mark.parametrize(
        "args",
        [(float("nan"), 1.0), (1.0, float("nan")),
         (float("nan"), float("nan")), (0.0, -0.0)],
    )
    def test_nan_through_minmax(self, callee, args):
        module = self._binary_intrinsic(callee)
        results = [
            make_interpreter(module, engine).run("f", list(args))
            for engine in ("scalar", "batched")
        ]
        assert struct.pack("<d", results[0]) == struct.pack("<d", results[1])

    def test_nan_through_sqrt(self):
        module = self._unary_intrinsic("sqrt")
        for value in (float("nan"), 4.0, 0.0):
            results = [
                make_interpreter(module, engine).run("f", [value])
                for engine in ("scalar", "batched")
            ]
            assert struct.pack("<d", results[0]) == struct.pack(
                "<d", results[1]
            )

    def test_divide_by_zero_trap_parity(self):
        module = Module("m")
        function = Function("f", [("a", I64), ("b", I64)], I64)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        builder.ret(builder.sdiv(*function.arguments))
        messages = []
        for engine in ("scalar", "batched"):
            with pytest.raises(TrapError) as excinfo:
                make_interpreter(module, engine).run("f", [7, 0])
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]

    def test_fdiv_by_zero_is_not_a_trap(self):
        module = Module("m")
        function = Function("f", [("a", F64), ("b", F64)], F64)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        builder.ret(builder.fdiv(*function.arguments))
        for args, check in [
            ((1.0, 0.0), lambda v: v == float("inf")),
            ((-1.0, 0.0), lambda v: v == float("-inf")),
            ((0.0, 0.0), math.isnan),
        ]:
            for engine in ("scalar", "batched"):
                assert check(make_interpreter(module, engine).run("f", args))

    def test_vector_load_out_of_bounds_parity(self):
        vt = vector_of(F64, 4)
        module = Module("m")
        function = Function("f", [("p", pointer_to(vt))], vt)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        builder.ret(builder.load(function.arguments[0], vt))
        for addr in (0, -8, 1 << 30):
            messages = []
            for engine in ("scalar", "batched"):
                interp = make_interpreter(module, engine, memory=Memory(256))
                with pytest.raises(MemoryError_) as excinfo:
                    interp.run("f", [addr])
                messages.append(str(excinfo.value))
            assert messages[0] == messages[1], addr

    def test_vector_store_out_of_bounds_parity(self):
        vt = vector_of(I64, 2)
        module = Module("m")
        function = Function("f", [("p", pointer_to(vt)), ("v", vt)], VOID)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        builder.store(function.arguments[1], function.arguments[0])
        builder.ret()
        for addr in (0, 250):  # 250: second lane crosses the 256-byte end
            messages = []
            for engine in ("scalar", "batched"):
                interp = make_interpreter(module, engine, memory=Memory(256))
                with pytest.raises(MemoryError_) as excinfo:
                    interp.run("f", [addr, (1, 2)])
                messages.append(str(excinfo.value))
            assert messages[0] == messages[1], addr

    def test_budget_fires_at_identical_step(self):
        module = _loop_module()
        for budget in (1, 7, 50, 137):
            states = []
            for engine in ("scalar", "batched"):
                interp = make_interpreter(module, engine, max_steps=budget)
                with pytest.raises(BudgetExceededError) as excinfo:
                    interp.run("count", [10**9])
                states.append((interp.executed_instructions, str(excinfo.value)))
            assert states[0] == states[1], budget

    def test_budget_not_hit_matches(self):
        module = _loop_module()
        outs = []
        for engine in ("scalar", "batched"):
            interp = make_interpreter(module, engine, max_steps=10_000)
            interp.run("count", [10])
            outs.append((interp.executed_instructions, interp.read_global("A")))
        assert outs[0] == outs[1]


class TestPlanCache:
    def test_plan_reused_across_runs(self):
        module = _loop_module()
        function = module.function("count")
        first = plan_function(function, DEFAULT_TARGET.cost_model)
        second = plan_function(function, DEFAULT_TARGET.cost_model)
        assert first is second
        # a distinct cost model gets its own plan
        assert plan_function(function, None) is not first

    def test_hit_miss_counters(self):
        module = _loop_module()
        function = module.function("count")
        function.__dict__.pop("_repro_plans", None)
        session = CompilerSession(name="plan-cache-test")
        with use_session(session):
            plan_function(function, None)
            plan_function(function, None)
            plan_function(function, None)
        stats = session.stats.snapshot()
        assert stats["interp.plan_cache.misses"] == 1
        assert stats["interp.plan_cache.hits"] == 2


def _loop_module() -> Module:
    """``for i in range(n): A[i] = i`` — the watchdog workout."""
    module = Module("loop")
    module.add_global("A", I64, 64)
    function = Function("count", [("n", I64)], VOID)
    module.add_function(function)
    entry = function.add_block("entry")
    header = function.add_block("header")
    body = function.add_block("body")
    done = function.add_block("done")
    b = IRBuilder(entry)
    b.br(header)
    b = IRBuilder(header)
    i = b.phi(I64, "i")
    cond = b.icmp(CmpPredicate.LT, i, function.arguments[0])
    b.condbr(cond, body, done)
    b = IRBuilder(body)
    addr = b.gep(module.global_named("A"), i)
    b.store(i, addr)
    inext = b.add(i, b.const_i64(1))
    b.br(header)
    b = IRBuilder(done)
    b.ret()
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(inext, body)
    return module
