"""Min/max horizontal-reduction tests."""

import random

import pytest

from repro.interp import Interpreter
from repro.ir import (
    F64,
    I64,
    VOID,
    Function,
    IRBuilder,
    Module,
    Opcode,
    verify_module,
)
from repro.machine import DEFAULT_TARGET
from repro.vectorizer import O3_CONFIG, SLP_CONFIG, SNSLP_CONFIG, compile_module
from repro.vectorizer.minmax import (
    MINMAX_CALLEES,
    find_minmax_candidates,
    plan_minmax,
)
from repro.vectorizer.slp import SLPVectorizer, _GraphBuilder


def _chain_module(callee="fmax", leaves=8, element=F64, fast_math=True):
    module = Module("mm")
    for name in ("B", "S"):
        module.add_global(name, element, 64)
    function = Function("kernel", [("i", I64)], VOID, fast_math=fast_math)
    module.add_function(function)
    builder = IRBuilder(function.add_block("entry"))
    i = function.arguments[0]

    def load(off):
        idx = builder.add(i, builder.const_i64(off)) if off else i
        return builder.load(builder.gep(module.global_named("B"), idx))

    acc = builder.call(callee, [load(0), load(1)])
    for k in range(2, leaves):
        acc = builder.call(callee, [acc, load(k)])
    builder.store(acc, builder.gep(module.global_named("S"), i))
    builder.ret()
    verify_module(module)
    return module, function


class TestDetection:
    def test_fmax_chain_detected(self):
        module, function = _chain_module()
        candidates = find_minmax_candidates(
            function.entry, fast_math=True, consumed_ids=set()
        )
        assert len(candidates) == 1
        assert candidates[0].callee == "fmax"
        assert candidates[0].leaf_count == 8
        assert len(candidates[0].chain_calls) == 7

    def test_short_chain_rejected(self):
        module, function = _chain_module(leaves=3)
        assert (
            find_minmax_candidates(function.entry, fast_math=True, consumed_ids=set())
            == []
        )

    def test_float_minmax_needs_fast_math(self):
        module, function = _chain_module(fast_math=False)
        assert (
            find_minmax_candidates(
                function.entry, fast_math=False, consumed_ids=set()
            )
            == []
        )

    def test_integer_minmax_exact(self):
        module, function = _chain_module(callee="smax", element=I64, fast_math=False)
        candidates = find_minmax_candidates(
            function.entry, fast_math=False, consumed_ids=set()
        )
        assert len(candidates) == 1

    def test_all_four_callees_recognized(self):
        assert set(MINMAX_CALLEES) == {"fmin", "fmax", "smin", "smax"}


class TestEndToEnd:
    def _run(self, module, inputs):
        interp = Interpreter(module)
        for name, values in inputs.items():
            interp.write_global(name, values)
        interp.run("kernel", [0])
        return interp.read_global("S")

    @pytest.mark.parametrize("callee,element", [
        ("fmax", F64), ("fmin", F64), ("smax", I64), ("smin", I64),
    ])
    def test_reduction_correct_and_vectorized(self, callee, element):
        fast_math = element is F64
        module, _ = _chain_module(callee=callee, element=element, fast_math=True)
        rng = random.Random(13)
        if element is F64:
            inputs = {"B": [rng.uniform(-99, 99) for _ in range(64)]}
        else:
            inputs = {"B": [rng.randint(-99, 99) for _ in range(64)]}
        oracle = self._run(
            compile_module(module, O3_CONFIG, DEFAULT_TARGET).module, inputs
        )
        compiled = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        graphs = [g for g in compiled.report.all_graphs() if g.kind == "minmax-reduction"]
        assert graphs and graphs[0].vectorized
        assert self._run(compiled.module, inputs) == oracle

    def test_vanilla_slp_also_reduces_minmax(self):
        # min/max has no inverse element: plain SLP handles it too
        module, _ = _chain_module()
        compiled = compile_module(module, SLP_CONFIG, DEFAULT_TARGET)
        graphs = [g for g in compiled.report.all_graphs() if g.kind == "minmax-reduction"]
        assert graphs and graphs[0].vectorized

    def test_emitted_ir_shape(self):
        module, _ = _chain_module(leaves=8)
        compiled = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        function = compiled.module.function("kernel")
        opcodes = [inst.opcode for inst in function.entry]
        assert Opcode.SHUFFLEVECTOR in opcodes
        # the scalar fmax chain is gone; only vector + final scalar calls remain
        scalar_calls = [
            inst
            for inst in function.entry
            if inst.opcode is Opcode.CALL and inst.type.is_scalar
        ]
        assert len(scalar_calls) == 1

    def test_scattered_leaves_not_profitable(self):
        # leaves from 8 different arrays: chunks would gather -> no vec
        module = Module("mm2")
        for k in range(8):
            module.add_global(f"B{k}", F64, 64)
        module.add_global("S", F64, 64)
        function = Function("kernel", [("i", I64)], VOID, fast_math=True)
        module.add_function(function)
        b = IRBuilder(function.add_block("entry"))
        i = function.arguments[0]

        def load(k):
            return b.load(b.gep(module.global_named(f"B{k}"), i))

        acc = b.call("fmax", [load(0), load(1)])
        for k in range(2, 8):
            acc = b.call("fmax", [acc, load(k)])
        b.store(acc, b.gep(module.global_named("S"), i))
        b.ret()
        verify_module(module)
        compiled = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        graphs = [g for g in compiled.report.all_graphs() if g.kind == "minmax-reduction"]
        assert not any(g.vectorized for g in graphs)
