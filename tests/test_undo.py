"""Tests for the Super-Node undo mechanism (Listing 1, line 53).

When a graph built over massaged code turns out unprofitable, the driver
must restore scalar code equivalent to the original: same opcode multiset,
same simulated cost, same behaviour — so later decisions (and the O3-vs-X
comparisons of the evaluation) see an untouched function.
"""

import collections
import random

import pytest

from repro.interp import Interpreter
from repro.ir import (
    F64,
    I64,
    VOID,
    Function,
    IRBuilder,
    Module,
    Opcode,
    verify_module,
)
from repro.machine import DEFAULT_TARGET
from repro.sim import simulate
from repro.vectorizer import SNSLP_CONFIG, compile_module


def _unprofitable_chain_module() -> Module:
    """Two lanes whose chains form a Super-Node but whose leaves live in
    six different arrays: every load group gathers, so the graph cannot
    be profitable and the massaging must be undone."""
    module = Module("undo")
    for name in "ABCDEFG":
        module.add_global(name, F64, 64)
    function = Function("kernel", [("i", I64)], VOID, fast_math=True)
    module.add_function(function)
    b = IRBuilder(function.add_block("entry"))
    i = function.arguments[0]

    def load(name, off):
        idx = b.add(i, b.const_i64(off)) if off else i
        return b.load(b.gep(module.global_named(name), idx))

    lane0 = b.fadd(b.fsub(load("B", 0), load("C", 0)), load("D", 0))
    b.store(lane0, b.gep(module.global_named("A"), i))
    lane1 = b.fsub(b.fadd(load("E", 1), load("F", 1)), load("G", 1))
    idx1 = b.add(i, b.const_i64(1))
    b.store(lane1, b.gep(module.global_named("A"), idx1))
    b.ret()
    verify_module(module)
    return module


def _opcode_histogram(module: Module):
    counts = collections.Counter()
    for function in module.functions.values():
        for inst in function.instructions():
            counts[inst.opcode] += 1
    return counts


class TestUndo:
    def test_unprofitable_graph_restores_opcode_histogram(self):
        module = _unprofitable_chain_module()
        before = _opcode_histogram(module)
        compiled = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        graphs = compiled.report.all_graphs()
        store_graphs = [g for g in graphs if g.kind == "store"]
        assert store_graphs and not store_graphs[0].vectorized
        assert store_graphs[0].supernodes, "a Super-Node must have formed"
        after = _opcode_histogram(compiled.module)
        assert before == after

    def test_unprofitable_graph_same_simulated_cost(self):
        module = _unprofitable_chain_module()
        inputs = {
            name: [random.Random(3).uniform(-2, 2) for _ in range(64)]
            for name in "BCDEFG"
        }
        original = simulate(module, "kernel", DEFAULT_TARGET, [0], inputs=inputs)
        compiled = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        restored = simulate(
            compiled.module, "kernel", DEFAULT_TARGET, [0], inputs=inputs
        )
        assert restored.cycles == original.cycles
        assert restored.globals_after["A"] == original.globals_after["A"]

    def test_restored_ir_verifies(self):
        module = _unprofitable_chain_module()
        compiled = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET, verify=False)
        verify_module(compiled.module)

    def test_profitable_graph_not_undone(self):
        # sanity check: the Fig-3 kernel (profitable) keeps its vector code
        from repro.kernels import kernel_named

        kernel = kernel_named("motiv-trunk-reorder")
        compiled = compile_module(kernel.build(), SNSLP_CONFIG, DEFAULT_TARGET)
        histogram = _opcode_histogram(compiled.module)
        assert any(
            inst.type.is_vector
            for f in compiled.module.functions.values()
            for inst in f.instructions()
            if inst.opcode is Opcode.LOAD
        )
