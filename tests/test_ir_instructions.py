"""Tests for instruction constructors and opcode algebra."""

import pytest

from repro.ir import (
    F64,
    I1,
    I32,
    I64,
    Argument,
    BasicBlock,
    Constant,
    Opcode,
    base_opcode,
    inverse_opcode,
    is_associative,
    is_commutative,
    same_operator_family,
    vector_of,
    pointer_to,
)
from repro.ir.instructions import (
    AltBinaryInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    CmpInst,
    CmpPredicate,
    CondBranchInst,
    ExtractElementInst,
    GepInst,
    InsertElementInst,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    ShuffleVectorInst,
    StoreInst,
)


def _arg(type_=I64, name="x"):
    return Argument(type_, name, 0)


def _ptr(type_=F64, name="p"):
    return Argument(pointer_to(type_), name, 0)


class TestOpcodeAlgebra:
    def test_commutative(self):
        assert is_commutative(Opcode.ADD)
        assert is_commutative(Opcode.FMUL)
        assert not is_commutative(Opcode.SUB)
        assert not is_commutative(Opcode.FDIV)
        assert not is_commutative(Opcode.SHL)

    def test_associative(self):
        assert is_associative(Opcode.FADD)
        assert not is_associative(Opcode.FSUB)

    def test_inverse_pairs(self):
        assert inverse_opcode(Opcode.ADD) is Opcode.SUB
        assert inverse_opcode(Opcode.FADD) is Opcode.FSUB
        assert inverse_opcode(Opcode.FMUL) is Opcode.FDIV
        # integer division does not invert integer multiplication
        assert inverse_opcode(Opcode.MUL) is None

    def test_base_opcode(self):
        assert base_opcode(Opcode.SUB) is Opcode.ADD
        assert base_opcode(Opcode.FDIV) is Opcode.FMUL
        assert base_opcode(Opcode.FADD) is Opcode.FADD

    def test_same_family(self):
        assert same_operator_family(Opcode.ADD, Opcode.SUB)
        assert same_operator_family(Opcode.FMUL, Opcode.FDIV)
        assert not same_operator_family(Opcode.ADD, Opcode.MUL)
        assert not same_operator_family(Opcode.FADD, Opcode.FMUL)


class TestBinary:
    def test_result_type(self):
        a, b = _arg(), Argument(I64, "y", 1)
        inst = BinaryInst(Opcode.ADD, a, b)
        assert inst.type is I64
        assert inst.is_binary
        assert inst.is_commutative

    def test_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            BinaryInst(Opcode.ADD, _arg(I64), _arg(I32))

    def test_non_binary_opcode_rejected(self):
        with pytest.raises(ValueError):
            BinaryInst(Opcode.LOAD, _arg(), _arg())

    def test_vector_binary(self):
        v = vector_of(F64, 4)
        inst = BinaryInst(Opcode.FADD, _arg(v), _arg(v))
        assert inst.type is v


class TestAltBinary:
    def test_lane_opcodes(self):
        v = vector_of(F64, 2)
        inst = AltBinaryInst((Opcode.FADD, Opcode.FSUB), _arg(v), _arg(v))
        assert inst.lane_opcodes == (Opcode.FADD, Opcode.FSUB)
        assert inst.type is v

    def test_scalar_rejected(self):
        with pytest.raises(TypeError):
            AltBinaryInst((Opcode.FADD,), _arg(F64), _arg(F64))

    def test_lane_count_mismatch(self):
        v = vector_of(F64, 4)
        with pytest.raises(ValueError):
            AltBinaryInst((Opcode.FADD, Opcode.FSUB), _arg(v), _arg(v))

    def test_cross_family_lanes_rejected(self):
        v = vector_of(F64, 2)
        with pytest.raises(ValueError):
            AltBinaryInst((Opcode.FADD, Opcode.FMUL), _arg(v), _arg(v))


class TestMemory:
    def test_load_type_from_pointer(self):
        inst = LoadInst(_ptr(F64))
        assert inst.type is F64
        assert inst.may_read_memory and not inst.may_write_memory

    def test_load_explicit_vector_type(self):
        inst = LoadInst(_ptr(F64), vector_of(F64, 4))
        assert inst.type is vector_of(F64, 4)

    def test_load_requires_pointer(self):
        with pytest.raises(TypeError):
            LoadInst(_arg(I64))

    def test_store_is_void_and_writes(self):
        inst = StoreInst(_arg(F64), _ptr(F64))
        assert inst.type.is_void
        assert inst.may_write_memory and inst.has_side_effects

    def test_gep(self):
        inst = GepInst(_ptr(F64), _arg(I64))
        assert inst.type is pointer_to(F64)

    def test_gep_requires_int_index(self):
        with pytest.raises(TypeError):
            GepInst(_ptr(F64), _arg(F64))


class TestVectorOps:
    def test_insertelement(self):
        v = vector_of(F64, 2)
        inst = InsertElementInst(_arg(v), _arg(F64), Constant(I32, 0))
        assert inst.type is v

    def test_insertelement_element_mismatch(self):
        v = vector_of(F64, 2)
        with pytest.raises(TypeError):
            InsertElementInst(_arg(v), _arg(I64), Constant(I32, 0))

    def test_extractelement(self):
        v = vector_of(I64, 4)
        inst = ExtractElementInst(_arg(v), Constant(I32, 2))
        assert inst.type is I64

    def test_shuffle_result_arity_follows_mask(self):
        v = vector_of(F64, 2)
        inst = ShuffleVectorInst(_arg(v), _arg(v), [0, 3, 1, 2])
        assert inst.type is vector_of(F64, 4)

    def test_shuffle_mask_bounds_checked(self):
        v = vector_of(F64, 2)
        with pytest.raises(ValueError):
            ShuffleVectorInst(_arg(v), _arg(v), [0, 4])


class TestMisc:
    def test_cmp_produces_i1(self):
        inst = CmpInst(Opcode.ICMP, CmpPredicate.LT, _arg(), _arg())
        assert inst.type is I1

    def test_vector_cmp_produces_i1_vector(self):
        v = vector_of(I64, 4)
        inst = CmpInst(Opcode.ICMP, CmpPredicate.EQ, _arg(v), _arg(v))
        assert inst.type is vector_of(I1, 4)

    def test_select_type(self):
        inst = SelectInst(_arg(I1, "c"), _arg(F64), _arg(F64))
        assert inst.type is F64

    def test_select_arm_mismatch(self):
        with pytest.raises(TypeError):
            SelectInst(_arg(I1), _arg(F64), _arg(I64))

    def test_cast(self):
        inst = CastInst(Opcode.SITOFP, _arg(I64), F64)
        assert inst.type is F64

    def test_call_known_intrinsic(self):
        inst = CallInst("sqrt", [_arg(F64)])
        assert inst.type is F64
        assert inst.callee == "sqrt"

    def test_call_unknown_intrinsic(self):
        with pytest.raises(ValueError):
            CallInst("frobnicate", [_arg(F64)])

    def test_call_arity_checked(self):
        with pytest.raises(ValueError):
            CallInst("fmin", [_arg(F64)])

    def test_terminators(self):
        bb = BasicBlock("t")
        assert BranchInst(bb).is_terminator
        assert RetInst().is_terminator
        assert CondBranchInst(_arg(I1), bb, bb).is_terminator
        assert BranchInst(bb).successors() == [bb]
        assert RetInst().successors() == []

    def test_condbr_requires_i1(self):
        bb = BasicBlock("t")
        with pytest.raises(TypeError):
            CondBranchInst(_arg(I64), bb, bb)

    def test_phi_incoming(self):
        bb1, bb2 = BasicBlock("a"), BasicBlock("b")
        phi = PhiInst(I64)
        v1, v2 = Constant(I64, 1), Constant(I64, 2)
        phi.add_incoming(v1, bb1)
        phi.add_incoming(v2, bb2)
        assert phi.incoming_for(bb1) is v1
        assert phi.incoming_for(bb2) is v2
        with pytest.raises(KeyError):
            phi.incoming_for(BasicBlock("c"))

    def test_phi_type_checked(self):
        phi = PhiInst(I64)
        with pytest.raises(TypeError):
            phi.add_incoming(Constant(F64, 1.0), BasicBlock("a"))
