"""Property-based end-to-end vectorizer tests.

Hypothesis generates random manually-unrolled kernels (random expression
trees per lane over random arrays) and every configuration must produce
the same memory contents as the O3 oracle.  This fuzzes the entire stack:
seeds, chain formation, reordering, legality, cost, codegen and DCE.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.interp import Interpreter
from repro.ir import (
    F64,
    I64,
    VOID,
    Function,
    IRBuilder,
    Module,
    verify_module,
)
from repro.machine import DEFAULT_TARGET, SSE4_LIKE
from repro.vectorizer import ALL_CONFIGS, compile_module

ARRAYS = "BCDEF"
LEN = 64


def _random_kernel(seed: int, num_lanes: int, float_mode: bool) -> Module:
    """A straight-line kernel: A[i+k] = expr_k for k in range(num_lanes).

    Each lane's expression is an independent random tree over loads of the
    input arrays at that lane's offset, so lanes are *near*-isomorphic with
    randomly permuted/structured terms — exactly the shape the Super-Node
    machinery manipulates.
    """
    rng = random.Random(seed)
    element = F64 if float_mode else I64
    module = Module(f"fuzz{seed}")
    module.add_global("A", element, LEN)
    for name in ARRAYS:
        module.add_global(name, element, LEN)
    function = Function("kernel", [("i", I64)], VOID, fast_math=True)
    module.add_function(function)
    builder = IRBuilder(function.add_block("entry"))
    i = function.arguments[0]
    index_cache = {}

    def index(off):
        if off not in index_cache:
            index_cache[off] = (
                builder.add(i, builder.const_i64(off)) if off else i
            )
        return index_cache[off]

    def load(name, off):
        return builder.load(builder.gep(module.global_named(name), index(off)))

    add_ops = ("fadd", "fsub") if float_mode else ("add", "sub")
    mul_ops = ("fmul", "fdiv") if float_mode else ("mul",)

    def expr(off, depth):
        if depth <= 0 or rng.random() < 0.35:
            return load(rng.choice(ARRAYS), off)
        roll = rng.random()
        if float_mode and roll < 0.08:
            # occasionally wrap in a pure intrinsic (call-bundle coverage)
            inner = expr(off, depth - 1)
            return builder.call("fabs", [inner])
        if float_mode and roll < 0.12:
            a = expr(off, depth - 1)
            b = expr(off, depth - 1)
            return builder.call(rng.choice(("fmin", "fmax")), [a, b])
        if roll < 0.75:
            op = rng.choice(add_ops)
        else:
            op = rng.choice(mul_ops)
        return getattr(builder, op)(expr(off, depth - 1), expr(off, depth - 1))

    for lane in range(num_lanes):
        value = expr(lane, rng.randint(2, 4))
        builder.store(value, builder.gep(module.global_named("A"), index(lane)))
    builder.ret()
    verify_module(module)
    return module


def _inputs(seed: int, float_mode: bool):
    rng = random.Random(seed ^ 0xBEEF)
    if float_mode:
        # keep magnitudes in a narrow positive band so fdiv chains stay
        # well-conditioned and reassociation error is tiny
        return {
            name: [rng.uniform(0.5, 2.0) for _ in range(LEN)]
            for name in ("A",) + tuple(ARRAYS)
        }
    return {
        name: [rng.randint(-1000, 1000) for _ in range(LEN)]
        for name in ("A",) + tuple(ARRAYS)
    }


def _run(module: Module, inputs) -> list:
    interp = Interpreter(module)
    for name, values in inputs.items():
        interp.write_global(name, values)
    interp.run("kernel", [0])
    return interp.read_global("A")


def _check_all_configs(seed, num_lanes, float_mode, target):
    module = _random_kernel(seed, num_lanes, float_mode)
    inputs = _inputs(seed, float_mode)
    oracle = None
    for config in ALL_CONFIGS:
        compiled = compile_module(module, config, target)
        out = _run(compiled.module, inputs)
        if oracle is None:
            oracle = out
            continue
        if float_mode:
            for x, y in zip(out, oracle):
                both_nan = math.isnan(x) and math.isnan(y)
                assert both_nan or math.isclose(x, y, rel_tol=1e-7, abs_tol=1e-9), (
                    f"seed={seed} lanes={num_lanes} config={config.name}"
                )
        else:
            assert out == oracle, (
                f"seed={seed} lanes={num_lanes} config={config.name}"
            )


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    num_lanes=st.sampled_from([2, 4]),
)
def test_integer_kernels_bitexact_across_configs(seed, num_lanes):
    _check_all_configs(seed, num_lanes, float_mode=False, target=DEFAULT_TARGET)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    num_lanes=st.sampled_from([2, 4]),
)
def test_float_kernels_close_across_configs(seed, num_lanes):
    _check_all_configs(seed, num_lanes, float_mode=True, target=DEFAULT_TARGET)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_sse_target_also_correct(seed):
    _check_all_configs(seed, 2, float_mode=False, target=SSE4_LIKE)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_vectorized_ir_always_verifies(seed):
    from repro.vectorizer import SNSLP_CONFIG

    module = _random_kernel(seed, 4, float_mode=False)
    compiled = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET, verify=False)
    verify_module(compiled.module)


def _random_reduction_kernel(seed: int, float_mode: bool) -> Module:
    """A straight-line kernel whose store value is one long reduction
    chain with random signs and random (load or product) leaves."""
    rng = random.Random(seed)
    element = F64 if float_mode else I64
    module = Module(f"redfuzz{seed}")
    module.add_global("A", element, LEN)
    for name in ARRAYS:
        module.add_global(name, element, LEN)
    function = Function("kernel", [("i", I64)], VOID, fast_math=True)
    module.add_function(function)
    builder = IRBuilder(function.add_block("entry"))
    i = function.arguments[0]

    def load(name, off):
        idx = builder.add(i, builder.const_i64(off)) if off else i
        return builder.load(builder.gep(module.global_named(name), idx))

    def leaf(k):
        if rng.random() < 0.5:
            return load(rng.choice(ARRAYS), k)
        mul = "fmul" if float_mode else "mul"
        return getattr(builder, mul)(
            load(rng.choice(ARRAYS), k), load(rng.choice(ARRAYS), k)
        )

    count = rng.randint(4, 12)
    add = "fadd" if float_mode else "add"
    sub = "fsub" if float_mode else "sub"
    acc = leaf(0)
    for k in range(1, count):
        op = sub if rng.random() < 0.3 else add
        acc = getattr(builder, op)(acc, leaf(k))
    builder.store(acc, builder.gep(module.global_named("A"), i))
    builder.ret()
    verify_module(module)
    return module


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100_000), float_mode=st.booleans())
def test_random_reductions_correct_across_configs(seed, float_mode):
    module = _random_reduction_kernel(seed, float_mode)
    inputs = _inputs(seed, float_mode)
    oracle = None
    for config in ALL_CONFIGS:
        compiled = compile_module(module, config, DEFAULT_TARGET)
        out = _run(compiled.module, inputs)
        if oracle is None:
            oracle = out
            continue
        if float_mode:
            for x, y in zip(out, oracle):
                both_nan = math.isnan(x) and math.isnan(y)
                assert both_nan or math.isclose(x, y, rel_tol=1e-7, abs_tol=1e-9), (
                    f"seed={seed} config={config.name}"
                )
        else:
            assert out == oracle, f"seed={seed} config={config.name}"
