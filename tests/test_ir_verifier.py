"""Verifier tests: every class of malformed IR must be caught."""

import pytest

from repro.ir import (
    F64,
    I64,
    VOID,
    CmpPredicate,
    Constant,
    Function,
    IRBuilder,
    Module,
    VerificationError,
    verify_function,
    verify_module,
)
from repro.ir.block import BasicBlock
from repro.ir.instructions import BinaryInst, BranchInst, Opcode, PhiInst, RetInst
from repro.ir.values import Argument
from conftest import build_simple_store_module


def _func_with_entry():
    function = Function("f", [("a", I64)], VOID)
    block = function.add_block("entry")
    return function, block, IRBuilder(block)


class TestStructure:
    def test_valid_module_passes(self):
        verify_module(build_simple_store_module())

    def test_missing_terminator(self):
        function, _, builder = _func_with_entry()
        builder.add(function.arguments[0], Constant(I64, 1))
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(function)

    def test_terminator_not_last(self):
        function, block, builder = _func_with_entry()
        builder.ret()
        block.append(BinaryInst(Opcode.ADD, Constant(I64, 1), Constant(I64, 2)))
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(function)

    def test_empty_function(self):
        with pytest.raises(VerificationError, match="no blocks"):
            verify_function(Function("f"))

    def test_use_before_def_in_block(self):
        function, block, builder = _func_with_entry()
        a = builder.add(function.arguments[0], Constant(I64, 1))
        b = builder.add(a, a)
        builder.ret()
        # move b before a: now b uses a before its definition
        block.remove(b)
        block.insert_at(0, b)
        with pytest.raises(VerificationError, match="used before"):
            verify_function(function)

    def test_foreign_argument_rejected(self):
        function, _, builder = _func_with_entry()
        foreign = Argument(I64, "evil", 0)
        builder.add(foreign, Constant(I64, 1))
        builder.ret()
        with pytest.raises(VerificationError, match="foreign argument"):
            verify_function(function)

    def test_operand_from_other_function_rejected(self):
        f1, _, b1 = _func_with_entry()
        stray = b1.add(f1.arguments[0], Constant(I64, 1))
        b1.ret()
        f2, block2, b2 = _func_with_entry()
        b2.add(stray, Constant(I64, 1))
        b2.ret()
        with pytest.raises(VerificationError, match="not defined in this function"):
            verify_function(f2)

    def test_branch_to_foreign_block(self):
        function, block, builder = _func_with_entry()
        builder.insert(BranchInst(BasicBlock("orphan")))
        with pytest.raises(VerificationError, match="foreign block"):
            verify_function(function)


class TestPhis:
    def _loop_function(self):
        function = Function("f", [("n", I64)], VOID)
        entry = function.add_block("entry")
        header = function.add_block("header")
        done = function.add_block("done")
        b = IRBuilder(entry)
        b.br(header)
        b.position_at_end(header)
        phi = b.phi(I64, "i")
        cond = b.icmp(CmpPredicate.LT, phi, function.arguments[0])
        inc = b.add(phi, b.const_i64(1))
        b.condbr(cond, header, done)
        b.position_at_end(done)
        b.ret()
        return function, entry, header, phi, inc

    def test_phi_with_correct_edges_passes(self):
        function, entry, header, phi, inc = self._loop_function()
        phi.add_incoming(Constant(I64, 0), entry)
        phi.add_incoming(inc, header)
        verify_function(function)

    def test_phi_missing_predecessor(self):
        function, entry, header, phi, inc = self._loop_function()
        phi.add_incoming(Constant(I64, 0), entry)
        with pytest.raises(VerificationError, match="predecessors"):
            verify_function(function)

    def test_phi_after_non_phi(self):
        function, entry, header, phi, inc = self._loop_function()
        phi.add_incoming(Constant(I64, 0), entry)
        phi.add_incoming(inc, header)
        late_phi = PhiInst(I64)
        late_phi.add_incoming(Constant(I64, 0), entry)
        late_phi.add_incoming(Constant(I64, 1), header)
        header.insert_at(2, late_phi)
        with pytest.raises(VerificationError, match="phi after non-phi"):
            verify_function(function)


class TestUseListIntegrity:
    def test_corrupted_use_list_detected(self):
        function, _, builder = _func_with_entry()
        a = builder.add(function.arguments[0], Constant(I64, 1))
        builder.add(a, a)
        builder.ret()
        # corrupt: drop a's use records behind the IR's back
        a.uses.clear()
        with pytest.raises(VerificationError, match="use record"):
            verify_function(function)
