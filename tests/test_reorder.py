"""Multi-lane SuperNode tests: Listings 1-3 (build, reorder, codegen)."""

import pytest

from repro.interp import Interpreter
from repro.ir import (
    F64,
    I64,
    VOID,
    Function,
    IRBuilder,
    Module,
    Opcode,
    eliminate_dead_code,
    verify_module,
)
from repro.vectorizer import LookAheadScorer, SuperNode


def _two_lane_module(lane0_builder, lane1_builder, type_=I64):
    """Build a module with two store lanes; returns (module, roots)."""
    module = Module("m")
    for name in "ABCDE":
        module.add_global(name, type_, 64)
    function = Function("k", [("i", I64)], VOID, fast_math=True)
    module.add_function(function)
    builder = IRBuilder(function.add_block("entry"))
    i = function.arguments[0]

    def loader(off):
        def load(name):
            idx = builder.add(i, builder.const_i64(off)) if off else i
            return builder.load(
                builder.gep(module.global_named(name), idx), name=f"{name}{off}"
            )

        return load

    roots = []
    for lane, make in enumerate((lane0_builder, lane1_builder)):
        root = make(builder, loader(lane))
        idx = builder.add(i, builder.const_i64(lane)) if lane else i
        builder.store(root, builder.gep(module.global_named("A"), idx))
        roots.append(root)
    builder.ret()
    verify_module(module)
    return module, function, roots


def _fig3_lanes():
    # lane0: (B - C) + D     lane1: (B + D) - C
    return _two_lane_module(
        lambda b, ld: b.add(b.sub(ld("B"), ld("C")), ld("D")),
        lambda b, ld: b.sub(b.add(ld("B"), ld("D")), ld("C")),
    )


class TestBuild:
    def test_builds_over_compatible_lanes(self):
        _, _, roots = _fig3_lanes()
        node = SuperNode.build(
            roots, allow_inverse=True, allow_trunk_swaps=True, fast_math=True
        )
        assert node is not None
        assert node.kind == "super"
        assert node.num_lanes == 2
        assert node.size() == 2
        assert node.contains_inverse

    def test_multinode_refuses_inverse_lanes(self):
        _, _, roots = _fig3_lanes()
        assert (
            SuperNode.build(
                roots, allow_inverse=False, allow_trunk_swaps=False, fast_math=True
            )
            is None
        )

    def test_single_lane_rejected(self):
        _, _, roots = _fig3_lanes()
        assert (
            SuperNode.build(
                roots[:1], allow_inverse=True, allow_trunk_swaps=True, fast_math=True
            )
            is None
        )

    def test_slot_count_mismatch_rejected(self):
        module, _, roots = _two_lane_module(
            lambda b, ld: b.add(b.sub(ld("B"), ld("C")), ld("D")),
            lambda b, ld: b.add(
                b.sub(b.add(ld("B"), ld("E")), ld("C")), ld("D")
            ),
        )
        assert (
            SuperNode.build(
                roots, allow_inverse=True, allow_trunk_swaps=True, fast_math=True
            )
            is None
        )

    def test_record_fields(self):
        _, _, roots = _fig3_lanes()
        node = SuperNode.build(
            roots, allow_inverse=True, allow_trunk_swaps=True, fast_math=True
        )
        record = node.record()
        assert record.kind == "super"
        assert record.size == 2
        assert record.lanes == 2
        assert record.family is Opcode.ADD
        assert not record.vectorized


class TestReorder:
    def test_fig3_reorder_aligns_consecutive_loads(self):
        _, _, roots = _fig3_lanes()
        node = SuperNode.build(
            roots, allow_inverse=True, allow_trunk_swaps=True, fast_math=True
        )
        node.reorder_leaves_and_trunks(LookAheadScorer())
        # After reordering, slot k of every lane must hold the same array's
        # load (consecutive offsets), i.e. names match modulo offset digit.
        names = [
            [chain.leaf_at(slot).value.name[0] for slot in chain.slots()]
            for chain in node.chains
        ]
        assert names[0] == names[1]

    def test_trunk_swaps_disabled_blocks_fig3(self):
        _, _, roots = _fig3_lanes()
        node = SuperNode.build(
            roots, allow_inverse=True, allow_trunk_swaps=False, fast_math=True
        )
        node.reorder_leaves_and_trunks(LookAheadScorer())
        names = [
            [chain.leaf_at(slot).value.name[0] for slot in chain.slots()]
            for chain in node.chains
        ]
        # lane1's C cannot reach the root slot without a trunk swap
        assert names[0] != names[1]

    def test_reorder_reports_applied_groups(self):
        _, _, roots = _fig3_lanes()
        node = SuperNode.build(
            roots, allow_inverse=True, allow_trunk_swaps=True, fast_math=True
        )
        applied = node.reorder_leaves_and_trunks(LookAheadScorer())
        assert applied == node.num_slots


class TestGenerateCode:
    def _check_semantics(self, module, function, node):
        """Compare pre/post codegen execution on fixed inputs."""
        inputs = {
            name: [float(k * 7 + ord(name)) for k in range(64)]
            if module.globals[name].element.is_float
            else [k * 7 + ord(name) for k in range(64)]
            for name in module.globals
        }
        # run original
        interp = Interpreter(module)
        for name, values in inputs.items():
            interp.write_global(name, values)
        interp.run(function.name, [0])
        expected = interp.read_global("A")

        node.reorder_leaves_and_trunks(LookAheadScorer())
        node.generate_code()
        eliminate_dead_code(function)
        verify_module(module)

        interp2 = Interpreter(module)
        for name, values in inputs.items():
            interp2.write_global(name, values)
        interp2.run(function.name, [0])
        assert interp2.read_global("A") == expected

    def test_codegen_preserves_semantics(self):
        module, function, roots = _fig3_lanes()
        node = SuperNode.build(
            roots, allow_inverse=True, allow_trunk_swaps=True, fast_math=True
        )
        self._check_semantics(module, function, node)

    def test_codegen_erases_superseded_chain(self):
        module, function, roots = _fig3_lanes()
        node = SuperNode.build(
            roots, allow_inverse=True, allow_trunk_swaps=True, fast_math=True
        )
        before_count = function.instruction_count()
        node.reorder_leaves_and_trunks(LookAheadScorer())
        new_roots = node.generate_code()
        # old chain gone, new chain added: instruction count unchanged
        assert function.instruction_count() == before_count
        for old in roots:
            assert old.parent is None  # erased
        for new in new_roots:
            assert new.parent is not None
            assert new.num_uses == 1  # the store

    def test_codegen_returns_roots_in_lane_order(self):
        module, function, roots = _fig3_lanes()
        node = SuperNode.build(
            roots, allow_inverse=True, allow_trunk_swaps=True, fast_math=True
        )
        node.reorder_leaves_and_trunks(LookAheadScorer())
        new_roots = node.generate_code()
        assert len(new_roots) == 2
        # each new root feeds the store of its lane
        stores = [u for root in new_roots for u in root.users()]
        assert all(s.opcode is Opcode.STORE for s in stores)
