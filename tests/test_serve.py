"""Tests for the compile service (PR 7).

Covers the lifecycle contract of :mod:`repro.serve` — crash → respawn +
requeue with results still bit-identical to serial, graceful drain,
typed timeout/cancel/backpressure errors — plus the shared cross-worker
store (LRU eviction, corruption-as-miss), the marshal-time satellite
fix, the JSONL wire protocol, and the CLI exit-code convention.
"""

import io
import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.bench import run_kernel_matrix, run_suite_parallel
from repro.bench.parallel import _run_pair
from repro.bench.runner import DEFAULT_SEED
from repro.fuzz import run_campaign
from repro.kernels import kernel_named
from repro.observe.session import CompilerSession, use_session
from repro.serve.service import (
    CompileService,
    RemoteTaskError,
    ServiceOverloaded,
    TaskCancelled,
    TaskTimeout,
    WorkerCrashed,
)
from repro.serve.wire import ServiceClient, SocketServer, serve_stream
from repro.vectorizer import SNSLP_CONFIG, CompileCache, cached_compile_module
from repro.vectorizer.cache import SharedJsonStore, cache_key

MOTIVATING = ("motiv-leaf-reorder", "motiv-trunk-reorder")

#: a cold bench pair: (kernel, config, target, seed, trace, remarks,
#: journal, metrics) — the same PairPayload the bench driver ships
PAIR = ("motiv-leaf-reorder", "SN-SLP", "skylake-like", DEFAULT_SEED,
        False, False, False, False)


def service_session() -> CompilerSession:
    return CompilerSession(name="test-serve")


class TestServiceLifecycle:
    def test_health_check_reports_every_worker(self):
        session = service_session()
        with CompileService(workers=2, session=session, name="t-health") as svc:
            reports = svc.health_check()
        assert len(reports) == 2
        pids = {report["pid"] for report in reports}
        assert all(isinstance(pid, int) for pid in pids)
        assert os.getpid() not in pids  # genuinely out-of-process

    def test_crash_respawns_requeues_and_stays_bit_identical(self, tmp_path):
        """A worker dying mid-task is respawned and the task requeued;
        the retried result matches a serial run bit-for-bit."""
        expected, _ = _run_pair(PAIR)
        marker = str(tmp_path / "crash-once.json")
        session = service_session()
        with CompileService(
            workers=1, retries=1, session=session, name="t-crash"
        ) as svc:
            future = svc.submit(
                "crash-once",
                {"marker": marker, "kind": "bench-pair", "payload": (PAIR, False)},
            )
            run, capture = future.result(timeout=60)
        crashed_pid = json.loads(open(marker).read())["pid"]
        assert capture["pid"] != crashed_pid  # retry ran in a respawn
        assert run.cycles == expected.cycles
        assert run.counters == expected.counters
        assert run.outputs == expected.outputs
        assert session.stats.value("serve.worker_crashes") >= 1
        assert session.stats.value("serve.requeued") >= 1

    def test_repeated_crash_surfaces_worker_crashed(self):
        session = service_session()
        with CompileService(
            workers=1, retries=0, session=session, name="t-crashhard"
        ) as svc:
            future = svc.submit("crash", 11)
            with pytest.raises(WorkerCrashed):
                future.result(timeout=30)
            # the slot was respawned; the service still answers
            assert svc.submit("ping").result(timeout=30)["pid"] > 0

    def test_graceful_shutdown_drains_inflight(self):
        session = service_session()
        svc = CompileService(workers=1, session=session, name="t-drain")
        futures = [svc.submit("sleep", 0.1) for _ in range(3)]
        svc.close(drain=True)
        assert [future.result(timeout=0) for future in futures] == [0.1] * 3
        assert session.stats.value("serve.completed") == 3

    def test_timeout_is_typed_and_service_survives(self):
        session = service_session()
        with CompileService(workers=1, session=session, name="t-timeout") as svc:
            future = svc.submit("sleep", 30.0, timeout=0.2)
            with pytest.raises(TaskTimeout):
                future.result(timeout=30)
            # the wedged worker was killed; a fresh one still answers
            assert svc.submit("ping").result(timeout=30)["pid"] > 0
        assert session.stats.value("serve.timeouts") == 1

    def test_cancel_is_typed(self):
        session = service_session()
        with CompileService(workers=1, session=session, name="t-cancel") as svc:
            first = svc.submit("sleep", 0.3)
            second = svc.submit("sleep", 0.3)
            assert svc.cancel(second) is True
            with pytest.raises(TaskCancelled):
                second.result(timeout=0)
            assert first.result(timeout=30) == 0.3
        assert session.stats.value("serve.cancelled") == 1

    def test_bounded_queue_backpressure(self):
        session = service_session()
        with CompileService(
            workers=1, max_pending=1, session=session, name="t-bp"
        ) as svc:
            first = svc.submit("sleep", 0.3)
            with pytest.raises(ServiceOverloaded):
                svc.submit("ping", block=False)
            assert first.result(timeout=30) == 0.3
            # slot freed: submissions flow again
            assert svc.submit("ping", block=False).result(timeout=30)

    def test_worker_exception_carries_remote_type(self):
        with CompileService(workers=1, session=service_session(),
                            name="t-remote") as svc:
            future = svc.submit("no-such-kind", None)
            with pytest.raises(RemoteTaskError) as info:
                future.result(timeout=30)
        assert info.value.remote_type == "ValueError"
        assert "no-such-kind" in info.value.remote_message


class TestServiceEquivalence:
    def test_service_bench_matches_serial_cold_and_warm(self, tmp_path):
        """The acceptance contract: suite results through the service —
        cold, and again warm from the shared result cache — equal the
        serial run on every deterministic field."""
        kernels = [kernel_named(name) for name in MOTIVATING]
        session = service_session()
        with CompileService(
            workers=2, cache_dir=str(tmp_path), session=session, name="t-eq"
        ) as svc:
            cold = run_suite_parallel(kernels, jobs=2, service=svc)
            warm = run_suite_parallel(kernels, jobs=2, service=svc)
        assert session.stats.value("serve.task_cache.misses") > 0
        assert session.stats.value("serve.task_cache.hits") > 0
        for kernel in kernels:
            serial = run_kernel_matrix(kernel)
            for config_name, expected in serial.items():
                for suite in (cold, warm):
                    run = suite[kernel.name][config_name]
                    assert run.cycles == expected.cycles, (kernel.name, config_name)
                    assert run.instructions == expected.instructions
                    assert run.counters == expected.counters, (kernel.name, config_name)
                    assert run.outputs == expected.outputs
                    assert run.correct == expected.correct is True
                    assert run.vectorized_graphs == expected.vectorized_graphs

    def test_fuzz_campaign_through_service_matches_serial(self):
        serial = run_campaign(budget="12", seed=5)
        session = service_session()
        with CompileService(workers=2, session=session, name="t-fuzz") as svc:
            via_service = run_campaign(budget="12", seed=5, service=svc)
        assert via_service.programs == serial.programs == 12
        assert dict(via_service.stats) == dict(serial.stats)
        assert via_service.ok and serial.ok

    def test_marshal_seconds_recorded_nonzero(self):
        """The satellite fix: submit times the real payload pickle, so a
        non-trivial batch records strictly positive marshal time (the old
        driver reported 0.0 across 64 tasks)."""
        session = service_session()
        session.metrics.enable()
        with use_session(session):
            with CompileService(workers=1, session=session, name="t-marshal") as svc:
                futures = [
                    svc.submit("bench-pair", (PAIR, False), shard_key=PAIR[0])
                    for _ in range(4)
                ]
                for future in futures:
                    future.result(timeout=120)
        assert session.stats.value("parallel.marshal_seconds") > 0.0
        histogram = session.metrics.histograms["parallel.task.marshal_seconds"]
        assert histogram.count == 4
        assert histogram.total > 0.0


class TestSharedStore:
    def test_lru_eviction_counts_and_keeps_recent(self, tmp_path):
        session = service_session()
        with use_session(session):
            store = SharedJsonStore(str(tmp_path), namespace="t", max_entries=3)
            for index in range(5):
                store.put(f"key{index}", {"value": index})
                time.sleep(0.01)  # distinct recency stamps
        assert len(store) == 3
        assert store.keys() == ["key2", "key3", "key4"]
        assert session.stats.value("cache.evictions") == 2

    def test_hit_refreshes_recency(self, tmp_path):
        session = service_session()
        with use_session(session):
            store = SharedJsonStore(str(tmp_path), namespace="t", max_entries=2)
            store.put("a", {"value": 1})
            time.sleep(0.01)
            store.put("b", {"value": 2})
            time.sleep(0.01)
            assert store.get("a") == {"value": 1}  # touch: a newer than b
            time.sleep(0.01)
            store.put("c", {"value": 3})
        assert store.keys() == ["a", "c"]  # b was the LRU entry

    def test_corrupt_entry_is_miss_not_crash(self, tmp_path):
        session = service_session()
        with use_session(session):
            store = SharedJsonStore(str(tmp_path), namespace="t")
            store.put("good", {"value": 1})
            with open(store._path("good"), "w") as handle:
                handle.write("{truncated garba")
            assert store.get("good") is None
            assert store.last_get == "corrupt"
            assert store.get("good") is None  # deleted: now a plain miss
            assert store.last_get == "miss"
        assert session.stats.value("cache.corrupt_entries") == 1

    def test_cross_worker_hits_are_counted(self, tmp_path):
        session = service_session()
        with use_session(session):
            store = SharedJsonStore(str(tmp_path), namespace="t")
            store.put("mine", {"value": 1})
            assert store.get("mine") == {"value": 1}
            # forge an entry "written" by another process
            with open(store._path("theirs"), "w") as handle:
                json.dump({"pid": os.getpid() + 1, "doc": {"value": 2}}, handle)
            assert store.get("theirs") == {"value": 2}
        assert session.stats.value("cache.cross_worker_hits") == 1

    def test_compile_cache_corrupt_entry_compiles_cold_with_remark(self, tmp_path):
        module = kernel_named("motiv-leaf-reorder").build()
        key = cache_key(module, SNSLP_CONFIG)
        cold_session = CompilerSession(name="cold")
        with use_session(cold_session):
            cold = cached_compile_module(
                module, SNSLP_CONFIG, cache=CompileCache(str(tmp_path)),
            )
        fresh = CompileCache(str(tmp_path))  # empty memory layer
        with open(fresh.shared_store._path(key), "w") as handle:
            handle.write("not json at all")
        session = CompilerSession(name="corrupt")
        session.remarks.enable()
        with use_session(session):
            result = cached_compile_module(module, SNSLP_CONFIG, cache=fresh)
        assert result.counters == cold.counters
        assert result.report.config_name == cold.report.config_name
        corrupt = [
            r for r in session.remarks.remarks
            if r.message.startswith("cache_corrupt")
        ]
        assert len(corrupt) == 1
        assert corrupt[0].args["key"] == key
        assert session.stats.value("cache.corrupt_entries") == 1
        # the poisoned file is gone and the recompile re-seeded the store
        warm = CompileCache(str(tmp_path))
        assert warm.lookup(key) is not None
        assert warm.last_lookup == "disk"

    def test_cache_shared_across_services(self, tmp_path):
        """Two successive services over one cache directory: the second
        pool's (new) workers hit entries the first pool's workers wrote."""
        kernels = [kernel_named(MOTIVATING[0])]
        first_session = service_session()
        with CompileService(
            workers=2, cache_dir=str(tmp_path),
            session=first_session, name="t-gen1",
        ) as svc:
            run_suite_parallel(kernels, jobs=2, service=svc)
        assert first_session.stats.value("serve.task_cache.misses") > 0
        second_session = service_session()
        with CompileService(
            workers=2, cache_dir=str(tmp_path),
            session=second_session, name="t-gen2",
        ) as svc:
            run_suite_parallel(kernels, jobs=2, service=svc)
        assert second_session.stats.value("serve.task_cache.hits") > 0
        assert second_session.stats.value("cache.cross_worker_hits") > 0


class TestWireProtocol:
    def test_stream_roundtrip(self):
        requests = "\n".join([
            json.dumps({"id": 1, "kind": "ping"}),
            json.dumps({"id": 2, "kind": "bench",
                        "kernel": "motiv-leaf-reorder", "config": "SN-SLP"}),
            json.dumps({"id": 3, "kind": "frobnicate"}),
            "this is not json",
            json.dumps({"id": 4, "kind": "stats"}),
            json.dumps({"id": 5, "kind": "shutdown"}),
        ]) + "\n"
        out = io.StringIO()
        with CompileService(workers=1, session=service_session(),
                            name="t-wire") as svc:
            shutdown = serve_stream(svc, io.StringIO(requests), out)
        assert shutdown is True
        responses = {
            doc.get("id"): doc
            for doc in map(json.loads, out.getvalue().splitlines())
        }
        assert responses[1]["ok"] and responses[1]["result"]["pid"] > 0
        assert responses[2]["ok"]
        run = responses[2]["result"]["run"]
        assert run["kernel"] == "motiv-leaf-reorder"
        assert run["cycles"] > 0
        assert not responses[3]["ok"]
        assert responses[3]["error"]["type"] == "BadRequest"
        assert not responses[None]["ok"]  # the unparseable line
        assert responses[4]["result"]["workers"][0]["pid"] > 0
        assert responses[5]["result"] == {"shutdown": True}

    def test_socket_server_and_client(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        with CompileService(workers=1, session=service_session(),
                            name="t-sock") as svc:
            server = SocketServer(svc, path)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            with ServiceClient(path) as client:
                assert client.request({"kind": "ping"})["ok"]
                responses = client.batch([
                    {"kind": "bench", "kernel": "motiv-leaf-reorder",
                     "config": "O3"},
                    {"kind": "ping"},
                ])
                assert all(doc["ok"] for doc in responses)
                assert responses[0]["result"]["run"]["config"] == "O3"
                assert client.request({"kind": "shutdown"})["ok"]
            thread.join(timeout=10)
            assert not thread.is_alive()
        assert not os.path.exists(path)


class TestCLIExitCodes:
    def test_service_timeout_exits_with_budget_code(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "bench",
             "--kernel", "motiv-leaf-reorder", "--jobs", "1",
             "--service", "--service-timeout", "0.000001"],
            capture_output=True, text=True, timeout=300,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 5, proc.stderr
        assert "deadline" in proc.stderr
