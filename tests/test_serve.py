"""Tests for the compile service (PR 7) and its chaos hardening (PR 8).

Covers the lifecycle contract of :mod:`repro.serve` — crash → respawn +
requeue with results still bit-identical to serial, graceful drain,
typed timeout/cancel/backpressure errors — plus the shared cross-worker
store (LRU eviction, corruption-as-miss), the marshal-time satellite
fix, the JSONL wire protocol, and the CLI exit-code convention.

PR 8 adds the resilience layer (deterministic backoff, circuit breaker,
degradation ladder), wire hardening (frame limits, client reconnect,
concurrent socket clients), the repro-source cache fingerprint, and the
no-escape contract: every service fault scenario must classify as
``recovered`` or ``degraded``, never ``escaped``/``fatal``.
"""

import io
import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.bench import run_kernel_matrix, run_suite_parallel
from repro.bench.parallel import _run_pair
from repro.bench.runner import DEFAULT_SEED
from repro.fuzz import run_campaign
from repro.kernels import kernel_named
from repro.observe.session import CompilerSession, use_session
from repro.serve.service import (
    CompileService,
    RemoteTaskError,
    ServiceOverloaded,
    TaskCancelled,
    TaskTimeout,
    WorkerCrashed,
)
from repro.robust.faults import FaultInjector
from repro.serve.chaos import (
    _bench_workload,
    _execute_scenario,
    _fuzz_workload,
    _socket_workload,
    chaos_scenarios,
)
from repro.serve.resilience import (
    CircuitBreaker,
    ResiliencePolicy,
    ResilientExecutor,
    backoff_delay,
)
from repro.serve.wire import (
    MAX_FRAME_BYTES,
    ServiceClient,
    SocketServer,
    serve_stream,
)
from repro.vectorizer import SNSLP_CONFIG, CompileCache, cached_compile_module
from repro.vectorizer.cache import (
    SharedJsonStore,
    cache_key,
    repro_source_fingerprint,
)

MOTIVATING = ("motiv-leaf-reorder", "motiv-trunk-reorder")

#: a cold bench pair: (kernel, config, target, seed, trace, remarks,
#: journal, metrics) — the same PairPayload the bench driver ships
PAIR = ("motiv-leaf-reorder", "SN-SLP", "skylake-like", DEFAULT_SEED,
        False, False, False, False)


def service_session() -> CompilerSession:
    return CompilerSession(name="test-serve")


class TestServiceLifecycle:
    def test_health_check_reports_every_worker(self):
        session = service_session()
        with CompileService(workers=2, session=session, name="t-health") as svc:
            reports = svc.health_check()
        assert len(reports) == 2
        pids = {report["pid"] for report in reports}
        assert all(isinstance(pid, int) for pid in pids)
        assert os.getpid() not in pids  # genuinely out-of-process

    def test_crash_respawns_requeues_and_stays_bit_identical(self, tmp_path):
        """A worker dying mid-task is respawned and the task requeued;
        the retried result matches a serial run bit-for-bit."""
        expected, _ = _run_pair(PAIR)
        marker = str(tmp_path / "crash-once.json")
        session = service_session()
        with CompileService(
            workers=1, retries=1, session=session, name="t-crash"
        ) as svc:
            future = svc.submit(
                "crash-once",
                {"marker": marker, "kind": "bench-pair", "payload": (PAIR, False)},
            )
            run, capture = future.result(timeout=60)
        crashed_pid = json.loads(open(marker).read())["pid"]
        assert capture["pid"] != crashed_pid  # retry ran in a respawn
        assert run.cycles == expected.cycles
        assert run.counters == expected.counters
        assert run.outputs == expected.outputs
        assert session.stats.value("serve.worker_crashes") >= 1
        assert session.stats.value("serve.requeued") >= 1

    def test_repeated_crash_surfaces_worker_crashed(self):
        session = service_session()
        with CompileService(
            workers=1, retries=0, session=session, name="t-crashhard"
        ) as svc:
            future = svc.submit("crash", 11)
            with pytest.raises(WorkerCrashed):
                future.result(timeout=30)
            # the slot was respawned; the service still answers
            assert svc.submit("ping").result(timeout=30)["pid"] > 0

    def test_graceful_shutdown_drains_inflight(self):
        session = service_session()
        svc = CompileService(workers=1, session=session, name="t-drain")
        futures = [svc.submit("sleep", 0.1) for _ in range(3)]
        svc.close(drain=True)
        assert [future.result(timeout=0) for future in futures] == [0.1] * 3
        assert session.stats.value("serve.completed") == 3

    def test_timeout_is_typed_and_service_survives(self):
        session = service_session()
        with CompileService(workers=1, session=session, name="t-timeout") as svc:
            future = svc.submit("sleep", 30.0, timeout=0.2)
            with pytest.raises(TaskTimeout):
                future.result(timeout=30)
            # the wedged worker was killed; a fresh one still answers
            assert svc.submit("ping").result(timeout=30)["pid"] > 0
        assert session.stats.value("serve.timeouts") == 1

    def test_cancel_is_typed(self):
        session = service_session()
        with CompileService(workers=1, session=session, name="t-cancel") as svc:
            first = svc.submit("sleep", 0.3)
            second = svc.submit("sleep", 0.3)
            assert svc.cancel(second) is True
            with pytest.raises(TaskCancelled):
                second.result(timeout=0)
            assert first.result(timeout=30) == 0.3
        assert session.stats.value("serve.cancelled") == 1

    def test_bounded_queue_backpressure(self):
        session = service_session()
        with CompileService(
            workers=1, max_pending=1, session=session, name="t-bp"
        ) as svc:
            first = svc.submit("sleep", 0.3)
            with pytest.raises(ServiceOverloaded):
                svc.submit("ping", block=False)
            assert first.result(timeout=30) == 0.3
            # slot freed: submissions flow again
            assert svc.submit("ping", block=False).result(timeout=30)

    def test_worker_exception_carries_remote_type(self):
        with CompileService(workers=1, session=service_session(),
                            name="t-remote") as svc:
            future = svc.submit("no-such-kind", None)
            with pytest.raises(RemoteTaskError) as info:
                future.result(timeout=30)
        assert info.value.remote_type == "ValueError"
        assert "no-such-kind" in info.value.remote_message


class TestServiceEquivalence:
    def test_service_bench_matches_serial_cold_and_warm(self, tmp_path):
        """The acceptance contract: suite results through the service —
        cold, and again warm from the shared result cache — equal the
        serial run on every deterministic field."""
        kernels = [kernel_named(name) for name in MOTIVATING]
        session = service_session()
        with CompileService(
            workers=2, cache_dir=str(tmp_path), session=session, name="t-eq"
        ) as svc:
            cold = run_suite_parallel(kernels, jobs=2, service=svc)
            warm = run_suite_parallel(kernels, jobs=2, service=svc)
        assert session.stats.value("serve.task_cache.misses") > 0
        assert session.stats.value("serve.task_cache.hits") > 0
        for kernel in kernels:
            serial = run_kernel_matrix(kernel)
            for config_name, expected in serial.items():
                for suite in (cold, warm):
                    run = suite[kernel.name][config_name]
                    assert run.cycles == expected.cycles, (kernel.name, config_name)
                    assert run.instructions == expected.instructions
                    assert run.counters == expected.counters, (kernel.name, config_name)
                    assert run.outputs == expected.outputs
                    assert run.correct == expected.correct is True
                    assert run.vectorized_graphs == expected.vectorized_graphs

    def test_fuzz_campaign_through_service_matches_serial(self):
        serial = run_campaign(budget="12", seed=5)
        session = service_session()
        with CompileService(workers=2, session=session, name="t-fuzz") as svc:
            via_service = run_campaign(budget="12", seed=5, service=svc)
        assert via_service.programs == serial.programs == 12
        assert dict(via_service.stats) == dict(serial.stats)
        assert via_service.ok and serial.ok

    def test_marshal_seconds_recorded_nonzero(self):
        """The satellite fix: submit times the real payload pickle, so a
        non-trivial batch records strictly positive marshal time (the old
        driver reported 0.0 across 64 tasks)."""
        session = service_session()
        session.metrics.enable()
        with use_session(session):
            with CompileService(workers=1, session=session, name="t-marshal") as svc:
                futures = [
                    svc.submit("bench-pair", (PAIR, False), shard_key=PAIR[0])
                    for _ in range(4)
                ]
                for future in futures:
                    future.result(timeout=120)
        assert session.stats.value("parallel.marshal_seconds") > 0.0
        histogram = session.metrics.histograms["parallel.task.marshal_seconds"]
        assert histogram.count == 4
        assert histogram.total > 0.0


class TestSharedStore:
    def test_lru_eviction_counts_and_keeps_recent(self, tmp_path):
        session = service_session()
        with use_session(session):
            store = SharedJsonStore(str(tmp_path), namespace="t", max_entries=3)
            for index in range(5):
                store.put(f"key{index}", {"value": index})
                time.sleep(0.01)  # distinct recency stamps
        assert len(store) == 3
        assert store.keys() == ["key2", "key3", "key4"]
        assert session.stats.value("cache.evictions") == 2

    def test_hit_refreshes_recency(self, tmp_path):
        session = service_session()
        with use_session(session):
            store = SharedJsonStore(str(tmp_path), namespace="t", max_entries=2)
            store.put("a", {"value": 1})
            time.sleep(0.01)
            store.put("b", {"value": 2})
            time.sleep(0.01)
            assert store.get("a") == {"value": 1}  # touch: a newer than b
            time.sleep(0.01)
            store.put("c", {"value": 3})
        assert store.keys() == ["a", "c"]  # b was the LRU entry

    def test_corrupt_entry_is_miss_not_crash(self, tmp_path):
        session = service_session()
        with use_session(session):
            store = SharedJsonStore(str(tmp_path), namespace="t")
            store.put("good", {"value": 1})
            with open(store._path("good"), "w") as handle:
                handle.write("{truncated garba")
            assert store.get("good") is None
            assert store.last_get == "corrupt"
            assert store.get("good") is None  # deleted: now a plain miss
            assert store.last_get == "miss"
        assert session.stats.value("cache.corrupt_entries") == 1

    def test_cross_worker_hits_are_counted(self, tmp_path):
        session = service_session()
        with use_session(session):
            store = SharedJsonStore(str(tmp_path), namespace="t")
            store.put("mine", {"value": 1})
            assert store.get("mine") == {"value": 1}
            # forge an entry "written" by another process
            with open(store._path("theirs"), "w") as handle:
                json.dump({"pid": os.getpid() + 1, "doc": {"value": 2}}, handle)
            assert store.get("theirs") == {"value": 2}
        assert session.stats.value("cache.cross_worker_hits") == 1

    def test_compile_cache_corrupt_entry_compiles_cold_with_remark(self, tmp_path):
        module = kernel_named("motiv-leaf-reorder").build()
        key = cache_key(module, SNSLP_CONFIG)
        cold_session = CompilerSession(name="cold")
        with use_session(cold_session):
            cold = cached_compile_module(
                module, SNSLP_CONFIG, cache=CompileCache(str(tmp_path)),
            )
        fresh = CompileCache(str(tmp_path))  # empty memory layer
        with open(fresh.shared_store._path(key), "w") as handle:
            handle.write("not json at all")
        session = CompilerSession(name="corrupt")
        session.remarks.enable()
        with use_session(session):
            result = cached_compile_module(module, SNSLP_CONFIG, cache=fresh)
        assert result.counters == cold.counters
        assert result.report.config_name == cold.report.config_name
        corrupt = [
            r for r in session.remarks.remarks
            if r.message.startswith("cache_corrupt")
        ]
        assert len(corrupt) == 1
        assert corrupt[0].args["key"] == key
        assert session.stats.value("cache.corrupt_entries") == 1
        # the poisoned file is gone and the recompile re-seeded the store
        warm = CompileCache(str(tmp_path))
        assert warm.lookup(key) is not None
        assert warm.last_lookup == "disk"

    def test_cache_shared_across_services(self, tmp_path):
        """Two successive services over one cache directory: the second
        pool's (new) workers hit entries the first pool's workers wrote."""
        kernels = [kernel_named(MOTIVATING[0])]
        first_session = service_session()
        with CompileService(
            workers=2, cache_dir=str(tmp_path),
            session=first_session, name="t-gen1",
        ) as svc:
            run_suite_parallel(kernels, jobs=2, service=svc)
        assert first_session.stats.value("serve.task_cache.misses") > 0
        second_session = service_session()
        with CompileService(
            workers=2, cache_dir=str(tmp_path),
            session=second_session, name="t-gen2",
        ) as svc:
            run_suite_parallel(kernels, jobs=2, service=svc)
        assert second_session.stats.value("serve.task_cache.hits") > 0
        assert second_session.stats.value("cache.cross_worker_hits") > 0


class TestWireProtocol:
    def test_stream_roundtrip(self):
        requests = "\n".join([
            json.dumps({"id": 1, "kind": "ping"}),
            json.dumps({"id": 2, "kind": "bench",
                        "kernel": "motiv-leaf-reorder", "config": "SN-SLP"}),
            json.dumps({"id": 3, "kind": "frobnicate"}),
            "this is not json",
            json.dumps({"id": 4, "kind": "stats"}),
            json.dumps({"id": 5, "kind": "shutdown"}),
        ]) + "\n"
        out = io.StringIO()
        with CompileService(workers=1, session=service_session(),
                            name="t-wire") as svc:
            shutdown = serve_stream(svc, io.StringIO(requests), out)
        assert shutdown is True
        responses = {
            doc.get("id"): doc
            for doc in map(json.loads, out.getvalue().splitlines())
        }
        assert responses[1]["ok"] and responses[1]["result"]["pid"] > 0
        assert responses[2]["ok"]
        run = responses[2]["result"]["run"]
        assert run["kernel"] == "motiv-leaf-reorder"
        assert run["cycles"] > 0
        assert not responses[3]["ok"]
        assert responses[3]["error"]["type"] == "BadRequest"
        assert not responses[None]["ok"]  # the unparseable line
        assert responses[4]["result"]["workers"][0]["pid"] > 0
        assert responses[5]["result"] == {"shutdown": True}

    def test_socket_server_and_client(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        with CompileService(workers=1, session=service_session(),
                            name="t-sock") as svc:
            server = SocketServer(svc, path)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            with ServiceClient(path) as client:
                assert client.request({"kind": "ping"})["ok"]
                responses = client.batch([
                    {"kind": "bench", "kernel": "motiv-leaf-reorder",
                     "config": "O3"},
                    {"kind": "ping"},
                ])
                assert all(doc["ok"] for doc in responses)
                assert responses[0]["result"]["run"]["config"] == "O3"
                assert client.request({"kind": "shutdown"})["ok"]
            thread.join(timeout=10)
            assert not thread.is_alive()
        assert not os.path.exists(path)


class TestResilience:
    def test_backoff_jitter_is_deterministic_and_bounded(self):
        policy = ResiliencePolicy(seed=7)
        delays = [backoff_delay(policy, n, token="shard-a") for n in (1, 2, 3)]
        replay = [backoff_delay(policy, n, token="shard-a") for n in (1, 2, 3)]
        assert delays == replay  # no global RNG: schedules replay exactly
        for attempt, delay in enumerate(delays, start=1):
            base = min(
                policy.backoff_max_seconds,
                policy.backoff_base_seconds
                * policy.backoff_factor ** (attempt - 1),
            )
            assert base * (1 - policy.jitter_ratio) <= delay
            assert delay <= base * (1 + policy.jitter_ratio)
        assert backoff_delay(policy, 0) == 0.0
        other_seed = ResiliencePolicy(seed=8)
        assert backoff_delay(other_seed, 1, token="shard-a") != delays[0]

    def test_circuit_breaker_state_machine(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failures_to_trip=2, cooldown_seconds=10.0, clock=lambda: clock[0]
        )
        assert breaker.allow()
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # second failure trips
        assert breaker.state == "open"
        assert not breaker.allow()
        clock[0] = 10.5  # cooldown lapsed: half-open admits one probe
        assert breaker.allow()
        assert not breaker.allow()
        assert breaker.record_failure() is True  # failed probe re-opens
        assert breaker.state == "open"
        clock[0] = 21.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() and breaker.allow()
        assert breaker.trips == 2

    def test_retry_recovers_bit_identical_results(self):
        """A transient worker fault is retried against the same service;
        the retried result equals a serial run bit-for-bit."""
        expected, _ = _run_pair(PAIR)
        session = service_session()
        policy = ResiliencePolicy(
            backoff_base_seconds=0.001, backoff_max_seconds=0.01
        )
        with CompileService(
            workers=1, session=session, name="t-retry",
            fault_plans=[("serve.task.error", "raise", 0, True)],
        ) as svc:
            with ResilientExecutor(svc, policy=policy, session=session) as ex:
                results = ex.run_batch(
                    [("bench-pair", (PAIR, False), PAIR[0], 1.0)]
                )
        run, _capture = results[0]
        assert run.cycles == expected.cycles
        assert run.counters == expected.counters
        assert run.outputs == expected.outputs
        assert session.stats.value("serve.retries") >= 1
        assert session.stats.value("serve.degraded") == 0

    def test_no_service_degrades_to_serial_with_identical_results(self):
        """The bottom rung: no service at all, tasks still complete with
        results identical to a direct serial run."""
        expected, _ = _run_pair(PAIR)
        session = service_session()
        session.remarks.enable()
        policy = ResiliencePolicy(local_pool_workers=0)
        with ResilientExecutor(None, policy=policy, session=session) as ex:
            results = ex.run_batch(
                [("bench-pair", (PAIR, False), None, 1.0)]
            )
        run, _capture = results[0]
        assert run.cycles == expected.cycles
        assert run.counters == expected.counters
        assert run.outputs == expected.outputs
        assert session.stats.value("serve.degraded") == 1
        rungs = [
            remark.args["rung"]
            for remark in session.remarks.of_kind("recovery")
        ]
        assert rungs == ["serial"]


@pytest.fixture(scope="module")
def chaos_baselines():
    """Fault-free workload fingerprints, computed once for the module."""
    session = CompilerSession(name="t-chaos-baseline")
    baselines = {
        "bench": _bench_workload(session, (MOTIVATING[0],), None, None),
        "fuzz": _fuzz_workload(session, 0, 8, None, None),
    }
    socket_session = CompilerSession(name="t-chaos-baseline-sock")
    with CompileService(
        workers=2, session=socket_session, name="t-chaos-base"
    ) as svc:
        baselines["socket"], _ = _socket_workload(socket_session, svc)
    return baselines


class TestChaosNoEscape:
    @pytest.mark.parametrize(
        "scenario", chaos_scenarios(), ids=lambda scenario: scenario.name
    )
    def test_armed_scenario_never_escapes(self, scenario, chaos_baselines):
        """The no-escape contract over every service (site, mode): each
        armed scenario finishes recovered or degraded — bit-identical to
        the fault-free baseline — and the fault verifiably fired."""
        status, detail, _counters = _execute_scenario(
            scenario,
            repetition=0,
            seed=0,
            baselines=chaos_baselines,
            kernel_names=(MOTIVATING[0],),
            fuzz_programs=8,
        )
        assert status in ("recovered", "degraded"), (scenario.name, detail)
        assert "did not fire" not in detail, (scenario.name, detail)


class TestWireHardening:
    def test_oversized_frame_draws_typed_error(self):
        big = json.dumps({"id": 1, "kind": "ping", "pad": "x" * MAX_FRAME_BYTES})
        requests = "\n".join([
            big,
            json.dumps({"id": 2, "kind": "ping"}),
            json.dumps({"id": 3, "kind": "shutdown"}),
        ]) + "\n"
        out = io.StringIO()
        with CompileService(workers=1, session=service_session(),
                            name="t-frame") as svc:
            serve_stream(svc, io.StringIO(requests), out)
        responses = {
            doc.get("id"): doc
            for doc in map(json.loads, out.getvalue().splitlines())
        }
        assert not responses[None]["ok"]
        assert responses[None]["error"]["type"] == "FrameTooLarge"
        # the loop survived: later frames on the same stream still answer
        assert responses[2]["ok"]
        assert responses[3]["result"] == {"shutdown": True}

    def test_non_object_frame_draws_bad_request(self):
        requests = "\n".join([
            json.dumps([1, 2, 3]),
            json.dumps({"id": 2, "kind": "shutdown"}),
        ]) + "\n"
        out = io.StringIO()
        with CompileService(workers=1, session=service_session(),
                            name="t-nonobj") as svc:
            serve_stream(svc, io.StringIO(requests), out)
        responses = {
            doc.get("id"): doc
            for doc in map(json.loads, out.getvalue().splitlines())
        }
        assert not responses[None]["ok"]
        assert responses[None]["error"]["type"] == "BadRequest"
        assert responses[2]["ok"]

    def test_client_reconnects_after_server_drop(self, tmp_path):
        """The server drops the connection mid-session (injected fault);
        the client reconnects once, resends, and every request answers."""
        path = str(tmp_path / "serve.sock")
        session = service_session()
        session.faults = FaultInjector()
        session.faults.arm(
            "serve.socket.disconnect", "raise", skip=2, once=True
        )
        with CompileService(workers=1, session=session, name="t-recon") as svc:
            server = SocketServer(svc, path)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                with ServiceClient(path, max_reconnects=1) as client:
                    responses = client.batch(
                        [{"kind": "ping"} for _ in range(5)]
                    )
                    assert client.reconnects == 1
            finally:
                server.request_shutdown()
                thread.join(timeout=10)
        assert len(responses) == 5
        assert all(doc["ok"] for doc in responses)

    def test_reconnect_budget_exhaustion_raises(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        session = service_session()
        session.faults = FaultInjector()
        session.faults.arm("serve.socket.disconnect", "raise", skip=0)
        with CompileService(workers=1, session=session, name="t-budget") as svc:
            server = SocketServer(svc, path)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                with pytest.raises(ConnectionError):
                    with ServiceClient(path, max_reconnects=1) as client:
                        client.batch([{"kind": "ping"} for _ in range(4)])
            finally:
                server.request_shutdown()
                thread.join(timeout=10)

    def test_concurrent_socket_clients(self, tmp_path):
        """Several clients share one socket server; each gets its own
        stream state and every request answers on the right connection."""
        path = str(tmp_path / "serve.sock")
        results = {}
        errors = []

        def drive(index: int) -> None:
            try:
                with ServiceClient(path) as client:
                    results[index] = client.batch(
                        [{"kind": "ping"} for _ in range(3)]
                    )
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((index, exc))

        with CompileService(workers=2, session=service_session(),
                            name="t-multi") as svc:
            server = SocketServer(svc, path)
            server_thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            server_thread.start()
            try:
                clients = [
                    threading.Thread(target=drive, args=(index,))
                    for index in range(3)
                ]
                for thread in clients:
                    thread.start()
                for thread in clients:
                    thread.join(timeout=30)
            finally:
                server.request_shutdown()
                server_thread.join(timeout=10)
        assert not errors
        assert sorted(results) == [0, 1, 2]
        for responses in results.values():
            assert len(responses) == 3
            assert all(doc["ok"] for doc in responses)


class TestSourceFingerprint:
    def test_cache_key_folds_source_fingerprint(self, monkeypatch):
        """Simulated code change (env override) → different cache keys,
        so persistent stores warmed by an older checkout miss cleanly."""
        module = kernel_named(MOTIVATING[0]).build()
        monkeypatch.setenv("REPRO_SOURCE_FINGERPRINT", "checkout-a")
        key_a = cache_key(module, SNSLP_CONFIG)
        monkeypatch.setenv("REPRO_SOURCE_FINGERPRINT", "checkout-b")
        key_b = cache_key(module, SNSLP_CONFIG)
        assert key_a != key_b
        monkeypatch.delenv("REPRO_SOURCE_FINGERPRINT")
        assert cache_key(module, SNSLP_CONFIG) not in (key_a, key_b)

    def test_fingerprint_is_stable_within_a_checkout(self):
        assert repro_source_fingerprint() == repro_source_fingerprint()
        assert len(repro_source_fingerprint()) == 16

    def test_stale_store_entries_miss_after_code_change(
        self, tmp_path, monkeypatch
    ):
        module = kernel_named(MOTIVATING[0]).build()
        monkeypatch.setenv("REPRO_SOURCE_FINGERPRINT", "old-checkout")
        with use_session(CompilerSession(name="warm")):
            cached_compile_module(
                module, SNSLP_CONFIG, cache=CompileCache(str(tmp_path)),
            )
        monkeypatch.setenv("REPRO_SOURCE_FINGERPRINT", "new-checkout")
        fresh = CompileCache(str(tmp_path))
        assert fresh.lookup(cache_key(module, SNSLP_CONFIG)) is None

    def test_corrupt_recency_index_is_rebuilt_without_data_loss(
        self, tmp_path
    ):
        session = service_session()
        with use_session(session):
            store = SharedJsonStore(str(tmp_path), namespace="t", max_entries=4)
            store.put("a", {"value": 1})
            with open(store._index_path, "w", encoding="utf-8") as handle:
                handle.write('{"entries": {truncated garbage')
            store.put("b", {"value": 2})
            assert store.get("a") == {"value": 1}
            assert store.get("b") == {"value": 2}
        assert session.stats.value("cache.index_rebuilds") == 1


class TestCLIExitCodes:
    def test_service_timeout_exits_with_budget_code(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "bench",
             "--kernel", "motiv-leaf-reorder", "--jobs", "1",
             "--service", "--service-timeout", "0.000001"],
            capture_output=True, text=True, timeout=300,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 5, proc.stderr
        assert "deadline" in proc.stderr
