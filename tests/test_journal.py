"""Decision journal, DOT rendering, ``repro explain`` and the HTML
benchmark report — plus the journal-off zero-overhead contract."""

import copy
import json

import pytest

from repro.cli import main
from repro.kernels import kernel_named
from repro.observe import (
    DecisionJournal,
    load_journal,
    summarize_journal,
)
from repro.observe.explain import explain_module, render_stories
from repro.observe.report_html import (
    diff_results,
    load_results,
    regressions,
    render_report,
)
from repro.observe.session import CompilerSession, use_session
from repro.vectorizer import SNSLP_CONFIG, compile_module
from repro.vectorizer.report import GraphReport


def _journal_for(kernel_name: str, config=SNSLP_CONFIG) -> DecisionJournal:
    """Compile one benchmark kernel with the journal armed."""
    session = CompilerSession(name="test-journal")
    session.journal.enable()
    module = kernel_named(kernel_name).build()
    for function in module.functions.values():
        function.assign_names()
    with use_session(session):
        compile_module(module, config)
    return session.journal


class TestDecisionJournal:
    def test_fig2_records_full_decision_sequence(self):
        journal = _journal_for("motiv-leaf-reorder")
        kinds = [e.kind for e in journal.events]
        for kind in ("seed", "supernode", "lookahead", "group", "reorder", "cost"):
            assert kind in kinds, f"missing {kind!r} in {kinds}"
        # the leaf-reorder kernel (Figure 2) legalizes via a leaf swap
        (reorder,) = journal.of_kind("reorder")
        assert reorder.args["leaf_swaps"] >= 1
        assert reorder.args["trunk_swaps"] == 0
        (cost,) = journal.of_kind("cost")
        assert cost.args["verdict"] == "profitable"
        assert cost.args["total"] < 0

    def test_fig3_trunk_swap_named_in_group_event(self):
        journal = _journal_for("motiv-trunk-reorder")
        groups = journal.of_kind("group")
        assert any("trunk swap legalized lane" in e.message for e in groups)
        (reorder,) = journal.of_kind("reorder")
        assert reorder.args["trunk_swaps"] >= 1

    def test_lookahead_event_carries_score_matrix(self):
        journal = _journal_for("motiv-leaf-reorder")
        lookaheads = journal.of_kind("lookahead")
        assert lookaheads
        event = lookaheads[0]
        assert event.args["matrix"]
        for entry in event.args["matrix"]:
            assert set(entry) == {"group", "score"}
        best = max(entry["score"] for entry in event.args["matrix"])
        assert event.args["best_score"] == best

    def test_graph_scoping_and_first_appearance_order(self):
        journal = _journal_for("motiv-leaf-reorder")
        ids = journal.graph_ids()
        assert ids == sorted(ids)
        for graph_id in ids:
            events = journal.for_graph(graph_id)
            assert events[0].kind == "seed"
            assert all(e.function for e in events)

    def test_jsonl_round_trip_and_summary(self, tmp_path):
        journal = _journal_for("motiv-leaf-reorder")
        path = tmp_path / "journal.jsonl"
        journal.write_jsonl(str(path))
        loaded = load_journal(str(path))
        assert [e.to_dict() for e in loaded] == [
            e.to_dict() for e in journal.events
        ]
        summary = summarize_journal(journal.events)
        assert summary["events"] == len(journal.events)
        assert summary["cost_accepted"] >= 1
        assert summary["cost_rejected"] == 0

    def test_disabled_journal_records_nothing(self):
        session = CompilerSession(name="test-journal-off")
        assert not session.journal.enabled
        with use_session(session):
            compile_module(kernel_named("motiv-leaf-reorder").build(), SNSLP_CONFIG)
        assert session.journal.events == []
        # the events-recorded counter never fires when disabled
        assert session.stats.value("journal.events-recorded") == 0


class TestJournalOffBitIdentical:
    def test_kernel_run_identical_with_and_without_journal_arg(self):
        """A journal-enabled bench run must not perturb cycles or the
        pre-existing counters (it may *add* journal.events-recorded)."""
        from repro.bench import run_kernel_config

        kernel = kernel_named("motiv-trunk-reorder")
        plain = run_kernel_config(kernel, SNSLP_CONFIG)
        journaled = run_kernel_config(kernel, SNSLP_CONFIG, journal=True)
        assert journaled.cycles == plain.cycles
        assert journaled.outputs == plain.outputs
        for name, value in plain.counters.items():
            assert journaled.counters[name] == value
        assert plain.journal is None
        assert journaled.journal is not None
        assert journaled.journal["cost_accepted"] >= 1


class TestDot:
    def test_graph_dot_has_supernode_cluster_and_apo_edges(self):
        journal = _journal_for("motiv-trunk-reorder")
        (graph_event,) = journal.of_kind("graph")
        dot = graph_event.args["dot"]
        assert dot.startswith("digraph slp {")
        assert "cluster_supernode" in dot
        assert "Super-Node" in dot

    def test_chain_dot_before_and_after_reorder_differ(self):
        journal = _journal_for("motiv-leaf-reorder")
        (supernode,) = journal.of_kind("supernode")
        (reorder,) = journal.of_kind("reorder")
        before = supernode.args["dot_before"]
        after = reorder.args["dot_after"]
        assert before.startswith("digraph chains {")
        assert after.startswith("digraph chains {")
        # a leaf swap was applied, so the lane layout changed
        assert before != after
        # APO signs annotate chain edges; one lane cluster per lane
        assert 'label="+"' in before or 'label="-"' in before
        assert "cluster_lane0" in before and "cluster_lane1" in before

    def test_lslp_graph_labels_multinode(self):
        from repro.vectorizer import LSLP_CONFIG

        journal = _journal_for("motiv-leaf-reorder", config=LSLP_CONFIG)
        graph_events = journal.of_kind("graph")
        if not graph_events:  # kernel may not seed under LSLP
            pytest.skip("no graphs attempted")
        dots = [e.args["dot"] for e in graph_events]
        assert all("digraph slp" in d for d in dots)


class TestExplain:
    def test_fig2_narrative_names_group_reorder_and_cost(self):
        kernel = kernel_named("motiv-leaf-reorder")
        result = explain_module(kernel.build(), SNSLP_CONFIG)
        assert len(result.stories) == 1
        story = result.stories[0]
        assert story.verdict == "vectorized"
        narrative = story.narrative()
        assert "seeded from 2 adjacent stores" in narrative
        assert "look-ahead picked {" in narrative
        assert "leaf swap legalized lane 1" in narrative
        assert "cost -6.0" in narrative
        assert narrative.endswith("vectorized")
        # joined streams: the slp passed-remark and the GraphReport
        assert any(r.kind == "passed" for r in story.remarks)
        assert isinstance(story.report, GraphReport)
        assert story.report.vectorized

    def test_fig3_narrative_mentions_trunk_swap(self):
        kernel = kernel_named("motiv-trunk-reorder")
        result = explain_module(kernel.build(), SNSLP_CONFIG)
        narrative = result.stories[0].narrative()
        assert "trunk swap legalized lane" in narrative

    def test_render_stories_snapshot(self):
        kernel = kernel_named("motiv-leaf-reorder")
        result = explain_module(kernel.build(), SNSLP_CONFIG)
        text = render_stories(result.stories)
        assert "=== graph #0 [store] @ kernel/body: vectorized ===" in text
        assert "  -> reorder applied groups at 3/3 operand index(es)" in text

    def test_explain_leaves_caller_session_untouched(self):
        session = CompilerSession(name="caller")
        with use_session(session):
            explain_module(
                kernel_named("motiv-leaf-reorder").build(), SNSLP_CONFIG,
                session=session,
            )
        assert session.journal.events == []
        assert session.remarks.remarks == []


class TestExplainCli:
    def test_explain_kernel_by_name(self, capsys):
        assert main(["explain", "motiv-leaf-reorder"]) == 0
        out = capsys.readouterr().out
        assert "look-ahead picked {" in out
        assert "-> cost -6.0" in out

    def test_explain_writes_dot_and_json(self, tmp_path, capsys):
        dot_dir = tmp_path / "dots"
        code = main(
            [
                "explain", "motiv-trunk-reorder",
                "--dot", str(dot_dir), "--json",
                "--journal", str(tmp_path / "j.jsonl"),
            ]
        )
        assert code == 0
        names = sorted(p.name for p in dot_dir.iterdir())
        assert names == [
            "graph0-chains-after.dot",
            "graph0-chains-before.dot",
            "graph0-graph.dot",
        ]
        doc = json.loads(capsys.readouterr().out)
        assert doc["graphs"][0]["verdict"] == "vectorized"
        assert load_journal(str(tmp_path / "j.jsonl"))

    def test_explain_unknown_source_is_usage_error(self):
        assert main(["explain", "no-such-kernel-or-file"]) == 2

    def test_explain_function_filter(self, tmp_path, capsys):
        assert main(["explain", "motiv-leaf-reorder", "--function", "kernel"]) == 0
        assert "graph #0" in capsys.readouterr().out
        assert main(["explain", "motiv-leaf-reorder", "--function", "nope"]) == 2


def _bench_doc(tmp_path):
    """A small real bench JSON document via the CLI."""
    results = tmp_path / "results.json"
    import contextlib
    import io

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(
            [
                "bench", "--kernel", "motiv-leaf-reorder",
                "--json", "--jobs", "1",
            ]
        )
    assert code == 0
    results.write_text(buffer.getvalue())
    return results


class TestHtmlReport:
    def test_diff_flags_injected_cycle_regression(self, tmp_path):
        path = _bench_doc(tmp_path)
        doc = load_results(str(path))
        worse = copy.deepcopy(doc)
        for run in worse["runs"]:
            if run["config"] == "SN-SLP":
                run["cycles"] *= 2
                run["counters"]["slp.graphs-vectorized"] = 0
        deltas = diff_results(worse, doc)
        bad = regressions(deltas)
        fields = {(d.field) for d in bad}
        assert "cycles" in fields
        assert "slp.graphs-vectorized" in fields
        # the reverse direction (an improvement) is not a regression
        assert not regressions(diff_results(doc, worse))

    def test_render_report_sections_and_escaping(self, tmp_path):
        path = _bench_doc(tmp_path)
        doc = load_results(str(path))
        html_text, deltas = render_report(
            doc, dots={"kernel <x>": 'digraph slp { a -> b [label="<0>"]; }'}
        )
        assert deltas == []
        assert "<h2>Cycles and speedup</h2>" in html_text
        assert "<h2>Coverage</h2>" in html_text
        assert "kernel &lt;x&gt;" in html_text  # DOT titles are escaped
        assert "&quot;&lt;0&gt;&quot;" in html_text

    def test_report_cli_baseline_regression_exit_code(self, tmp_path):
        path = _bench_doc(tmp_path)
        doc = load_results(str(path))
        worse = copy.deepcopy(doc)
        for run in worse["runs"]:
            run["cycles"] *= 1.5
        regressed = tmp_path / "regressed.json"
        regressed.write_text(json.dumps(worse))
        out = tmp_path / "report.html"
        assert (
            main(
                [
                    "report", str(regressed),
                    "--baseline", str(path), "-o", str(out),
                    "--dot-worst", "0",
                ]
            )
            == 6
        )
        assert (
            main(
                [
                    "report", str(path),
                    "--baseline", str(path), "-o", str(out),
                    "--dot-worst", "1",
                ]
            )
            == 0
        )
        text = out.read_text()
        assert "No differences against the baseline." in text
        # --dot-worst embedded the slowest kernel's SLP graph
        assert "digraph slp" in text

    def test_report_cli_bad_json_is_usage_error(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"not": "a bench doc"}')
        assert main(["report", str(bogus)]) == 2


class TestWorkerObservabilityMerge:
    def test_parallel_bench_merges_worker_spans_and_remarks(self):
        from repro.bench import run_suite_parallel

        session = CompilerSession(name="parent")
        session.tracer.enable()
        session.remarks.enable()
        kernels = [kernel_named("motiv-leaf-reorder")]
        with use_session(session):
            suite = run_suite_parallel(kernels, jobs=2)
        assert suite["motiv-leaf-reorder"]
        assert session.tracer.events, "worker spans were not merged"
        pids = {event.pid for event in session.tracer.events}
        assert pids - {0}, "no worker-pid spans were merged"
        # the parent records only the dispatch driver's own spans (plus
        # the per-request service spans); all compile/simulate work
        # happened in (and is attributed to) workers
        parent_names = {
            event.name for event in session.tracer.events if event.pid == 0
        }
        assert parent_names <= {
            "parallel:submit", "parallel:merge",
            "serve:request", "serve:queue",
        }
        assert session.remarks.remarks, "worker remarks were not merged"
        assert all(
            "worker_pid" in remark.args for remark in session.remarks.remarks
        )

    def test_parallel_bench_without_observability_merges_nothing(self):
        from repro.bench import run_suite_parallel

        session = CompilerSession(name="parent-quiet")
        with use_session(session):
            run_suite_parallel([kernel_named("motiv-leaf-reorder")], jobs=2)
        assert session.tracer.events == []
        assert session.remarks.remarks == []


class TestCacheHitRemark:
    def test_cache_hit_emits_remark_and_replays_counters(self, tmp_path):
        from repro.vectorizer import CompileCache, cached_compile_module
        from conftest import build_simple_store_module

        cache = CompileCache(str(tmp_path / "cache"))
        warm = CompilerSession(name="warm")
        cached_compile_module(
            build_simple_store_module(4), SNSLP_CONFIG,
            session=warm, cache=cache,
        )
        assert warm.stats.value("cache.misses") == 1

        hit = CompilerSession(name="hit")
        hit.remarks.enable()
        cached_compile_module(
            build_simple_store_module(4), SNSLP_CONFIG,
            session=hit, cache=cache,
        )
        assert hit.stats.value("cache.hits") == 1
        (remark,) = [
            r for r in hit.remarks.remarks if r.message.startswith("cache_hit")
        ]
        assert remark.kind == "analysis"
        assert remark.args["config"] == SNSLP_CONFIG.name
        # the stored compile counters were replayed into the hit session
        for name, value in remark.args["counters"].items():
            assert hit.stats.value(name) >= value


class TestGatherReasonDedup:
    def test_reasons_are_deduped_and_sorted(self):
        report = GraphReport(
            function="f", block="b", lanes=2, cost=1.0, vectorized=False,
            node_count=1, gather_count=3,
            gather_reasons=["z-reason", "a-reason", "z-reason", "a-reason"],
        )
        assert report.gather_reasons == ["a-reason", "z-reason"]
