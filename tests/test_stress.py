"""Stress tests: larger programs through the whole pipeline.

Not micro-benchmarks — these assert the pipeline stays correct and
tractable when a function contains many independent seed groups and long
chains at once.
"""

import math
import random
import time

import pytest

from repro.interp import Interpreter
from repro.ir import F64, I64, VOID, Function, IRBuilder, Module, verify_module
from repro.machine import DEFAULT_TARGET
from repro.vectorizer import ALL_CONFIGS, SNSLP_CONFIG, compile_module

GROUPS = 12
LANES = 4


def _many_graphs_module(seed: int = 5) -> Module:
    """12 independent 4-lane store groups, each an SN-shaped signed sum."""
    rng = random.Random(seed)
    module = Module("stress")
    arrays = [f"IN{k}" for k in range(6)]
    module.add_global("OUT", F64, 4096)
    for name in arrays:
        module.add_global(name, F64, 4096)
    function = Function("kernel", [("i", I64)], VOID, fast_math=True)
    module.add_function(function)
    builder = IRBuilder(function.add_block("entry"))
    i = function.arguments[0]
    index_cache = {}

    def index(offset):
        if offset not in index_cache:
            index_cache[offset] = (
                builder.add(i, builder.const_i64(offset)) if offset else i
            )
        return index_cache[offset]

    def load(name, offset):
        return builder.load(
            builder.gep(module.global_named(name), index(offset))
        )

    for group in range(GROUPS):
        base = group * LANES
        terms = [(arrays[j], j % 3 == 1) for j in range(4)]  # (array, minus)
        for lane in range(LANES):
            order = list(terms)
            rng.shuffle(order)
            anchor_idx = next(k for k, (_, minus) in enumerate(order) if not minus)
            name, _ = order.pop(anchor_idx)
            expr = load(name, base + lane)
            for name, minus in order:
                leaf = load(name, base + lane)
                expr = builder.fsub(expr, leaf) if minus else builder.fadd(expr, leaf)
            builder.store(expr, builder.gep(module.global_named("OUT"), index(base + lane)))
    builder.ret()
    verify_module(module)
    return module


class TestStress:
    def test_many_graphs_all_vectorize_and_stay_correct(self):
        module = _many_graphs_module()
        rng = random.Random(77)
        inputs = {
            f"IN{k}": [rng.uniform(-3, 3) for _ in range(4096)] for k in range(6)
        }

        def run(mod):
            interp = Interpreter(mod)
            for name, values in inputs.items():
                interp.write_global(name, values)
            interp.run("kernel", [0])
            return interp.read_global("OUT")

        oracle = None
        for config in ALL_CONFIGS:
            compiled = compile_module(module, config, DEFAULT_TARGET)
            out = run(compiled.module)
            if oracle is None:
                oracle = out
                continue
            for x, y in zip(out, oracle):
                assert math.isclose(x, y, rel_tol=1e-9, abs_tol=1e-12)
        # under SN-SLP, every one of the 12 groups vectorizes
        compiled = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        assert len(compiled.report.vectorized_graphs()) == GROUPS

    def test_compile_time_stays_tractable(self):
        module = _many_graphs_module()
        start = time.perf_counter()
        compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        elapsed = time.perf_counter() - start
        # 12 Super-Nodes of 4 lanes x 3 trunks: well under a second
        assert elapsed < 2.0

    def test_long_chain_capped_by_max_trunks(self):
        module = Module("deep")
        module.add_global("OUT", F64, 64)
        module.add_global("IN0", F64, 64)
        function = Function("kernel", [("i", I64)], VOID, fast_math=True)
        module.add_function(function)
        b = IRBuilder(function.add_block("entry"))
        i = function.arguments[0]
        for lane in range(2):
            idx = b.add(i, b.const_i64(lane)) if lane else i
            expr = b.load(b.gep(module.global_named("IN0"), idx))
            for _ in range(40):  # deeper than max_trunks
                expr = b.fadd(expr, b.load(b.gep(module.global_named("IN0"), idx)))
            b.store(expr, b.gep(module.global_named("OUT"), idx))
        b.ret()
        verify_module(module)
        start = time.perf_counter()
        compiled = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        assert time.perf_counter() - start < 5.0
        verify_module(compiled.module)
