"""Tests for the IR type system."""

import pytest

from repro.ir import (
    F32,
    F64,
    I1,
    I8,
    I32,
    I64,
    VOID,
    FloatType,
    IntType,
    PointerType,
    VectorType,
    parse_type,
    pointer_to,
    vector_of,
)


class TestInterning:
    def test_int_types_are_interned(self):
        assert IntType(32) is IntType(32)
        assert IntType(32) is I32

    def test_float_types_are_interned(self):
        assert FloatType(64) is F64

    def test_vector_types_are_interned(self):
        assert vector_of(F64, 4) is vector_of(F64, 4)

    def test_pointer_types_are_interned(self):
        assert pointer_to(F32) is pointer_to(F32)

    def test_distinct_types_are_distinct(self):
        assert IntType(32) is not IntType(64)
        assert vector_of(F64, 2) is not vector_of(F64, 4)
        assert vector_of(F64, 2) is not vector_of(F32, 2)


class TestPredicates:
    def test_void(self):
        assert VOID.is_void
        assert not VOID.is_scalar

    def test_integer(self):
        assert I64.is_integer and I64.is_scalar
        assert not I64.is_float and not I64.is_vector

    def test_float(self):
        assert F32.is_float and F32.is_scalar

    def test_vector(self):
        v = vector_of(I32, 8)
        assert v.is_vector and not v.is_scalar
        assert v.scalar_type() is I32

    def test_pointer(self):
        p = pointer_to(F64)
        assert p.is_pointer
        assert p.pointee is F64


class TestWidths:
    def test_bit_widths(self):
        assert I1.bit_width == 1
        assert I64.bit_width == 64
        assert F32.bit_width == 32
        assert vector_of(F64, 4).bit_width == 256
        assert pointer_to(I8).bit_width == 64
        assert VOID.bit_width == 0

    def test_byte_widths(self):
        assert I1.byte_width == 1
        assert I64.byte_width == 8
        assert vector_of(F32, 4).byte_width == 16


class TestIntSemantics:
    def test_wrap_positive_overflow(self):
        assert I8.wrap(130) == -126

    def test_wrap_negative_overflow(self):
        assert I8.wrap(-130) == 126

    def test_wrap_identity_in_range(self):
        assert I32.wrap(12345) == 12345
        assert I32.wrap(-12345) == -12345

    def test_min_max(self):
        assert I8.min_value() == -128
        assert I8.max_value() == 127
        assert I1.min_value() == 0
        assert I1.max_value() == 1


class TestValidation:
    def test_invalid_int_width(self):
        with pytest.raises(ValueError):
            IntType(24)

    def test_invalid_float_width(self):
        with pytest.raises(ValueError):
            FloatType(16)

    def test_vector_of_vector_rejected(self):
        with pytest.raises(ValueError):
            VectorType(vector_of(F64, 2), 2)

    def test_vector_length_one_rejected(self):
        with pytest.raises(ValueError):
            vector_of(F64, 1)

    def test_pointer_to_void_rejected(self):
        with pytest.raises(ValueError):
            PointerType(VOID)

    def test_pointer_to_pointer_rejected(self):
        with pytest.raises(ValueError):
            PointerType(pointer_to(F64))


class TestParseType:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("void", VOID),
            ("i1", I1),
            ("i64", I64),
            ("f32", F32),
            ("f64*", pointer_to(F64)),
            ("<4 x f64>", vector_of(F64, 4)),
            ("<2 x i32>", vector_of(I32, 2)),
            ("<2 x f32>*", pointer_to(vector_of(F32, 2))),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_type(text) is expected

    def test_round_trip(self):
        for type_ in (VOID, I32, F64, vector_of(I64, 4), pointer_to(F32)):
            assert parse_type(str(type_)) is type_

    def test_parse_garbage(self):
        with pytest.raises(ValueError):
            parse_type("x77")
