"""Tests for values, constants and use-def bookkeeping."""

import math

import pytest

from repro.ir import (
    F32,
    F64,
    I8,
    I64,
    Argument,
    Constant,
    GlobalBuffer,
    Opcode,
    vector_of,
)
from repro.ir.instructions import BinaryInst


def _args(n=3, type_=I64):
    return [Argument(type_, f"a{i}", i) for i in range(n)]


class TestConstants:
    def test_int_constant_wraps(self):
        assert Constant(I8, 300).value == 44

    def test_float_constant_f32_rounds(self):
        # 0.1 is not representable in binary32; the payload must round.
        c = Constant(F32, 0.1)
        assert c.value != 0.1
        assert math.isclose(c.value, 0.1, rel_tol=1e-7)

    def test_float_constant_f64_exact(self):
        assert Constant(F64, 0.1).value == 0.1

    def test_vector_constant(self):
        c = Constant(vector_of(I64, 3), (1, 2, 3))
        assert c.value == (1, 2, 3)

    def test_vector_constant_arity_mismatch(self):
        with pytest.raises(ValueError):
            Constant(vector_of(I64, 2), (1, 2, 3))

    def test_int_constant_requires_int(self):
        with pytest.raises(TypeError):
            Constant(I64, 1.5)

    def test_equality_and_hash(self):
        assert Constant(I64, 5) == Constant(I64, 5)
        assert Constant(I64, 5) != Constant(I64, 6)
        assert hash(Constant(F64, 2.0)) == hash(Constant(F64, 2.0))

    def test_nan_constants_hashable(self):
        a = Constant(F64, float("nan"))
        b = Constant(F64, float("nan"))
        assert a == b  # NaN-keyed equality is identity-of-key, not IEEE

    def test_is_zero(self):
        assert Constant(I64, 0).is_zero()
        assert Constant(vector_of(F64, 2), (0.0, 0.0)).is_zero()
        assert not Constant(I64, 1).is_zero()

    def test_ref_formats(self):
        assert Constant(I64, -3).ref() == "-3"
        assert Constant(vector_of(I64, 2), (1, 2)).ref() == "<1, 2>"


class TestUseDef:
    def test_operands_recorded(self):
        a, b, _ = _args()
        inst = BinaryInst(Opcode.ADD, a, b)
        assert inst.operands == (a, b)
        assert a.num_uses == 1
        assert b.num_uses == 1
        assert list(a.users()) == [inst]

    def test_set_operand_updates_uses(self):
        a, b, c = _args()
        inst = BinaryInst(Opcode.ADD, a, b)
        inst.set_operand(0, c)
        assert inst.operand(0) is c
        assert a.num_uses == 0
        assert c.num_uses == 1

    def test_set_operand_same_value_noop(self):
        a, b, _ = _args()
        inst = BinaryInst(Opcode.ADD, a, b)
        inst.set_operand(0, a)
        assert a.num_uses == 1

    def test_swap_operands(self):
        a, b, _ = _args()
        inst = BinaryInst(Opcode.ADD, a, b)
        inst.swap_operands(0, 1)
        assert inst.operands == (b, a)
        assert a.num_uses == 1 and b.num_uses == 1

    def test_duplicate_operand_uses_counted(self):
        a, _, _ = _args()
        inst = BinaryInst(Opcode.ADD, a, a)
        assert a.num_uses == 2
        assert a.unique_users() == [inst]

    def test_rauw(self):
        a, b, c = _args()
        add1 = BinaryInst(Opcode.ADD, a, b)
        add2 = BinaryInst(Opcode.ADD, add1, add1)
        add1.replace_all_uses_with(c)
        assert add2.operands == (c, c)
        assert add1.num_uses == 0
        assert c.num_uses == 2

    def test_rauw_self_is_noop(self):
        a, b, _ = _args()
        add1 = BinaryInst(Opcode.ADD, a, b)
        BinaryInst(Opcode.ADD, add1, add1)
        add1.replace_all_uses_with(add1)
        assert add1.num_uses == 2

    def test_drop_all_references(self):
        a, b, _ = _args()
        inst = BinaryInst(Opcode.ADD, a, b)
        inst.drop_all_references()
        assert a.num_uses == 0
        assert inst.num_operands == 0


class TestGlobalBuffer:
    def test_pointer_typed(self):
        g = GlobalBuffer("A", F64, 16)
        assert g.type.is_pointer
        assert g.type.pointee is F64
        assert g.ref() == "@A"

    def test_initializer_length_checked(self):
        with pytest.raises(ValueError):
            GlobalBuffer("A", F64, 4, [1.0, 2.0])

    def test_initializer_stored(self):
        g = GlobalBuffer("A", I64, 3, [1, 2, 3])
        assert g.initializer == [1, 2, 3]
