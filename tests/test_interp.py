"""Interpreter and memory model tests."""

import math

import pytest

from repro.interp import Interpreter, InterpreterError, Memory, MemoryError_, TrapError, run_kernel
from repro.interp.memory import _scalar_size
from repro.ir import (
    F32,
    F64,
    I8,
    I64,
    VOID,
    CmpPredicate,
    Constant,
    Function,
    IRBuilder,
    Module,
    Opcode,
    vector_of,
)
from conftest import build_simple_store_module


class TestMemory:
    def test_scalar_round_trip(self):
        mem = Memory()
        addr = mem.allocate(64)
        mem.store_scalar(addr, I64, -123456789)
        assert mem.load_scalar(addr, I64) == -123456789
        mem.store_scalar(addr, F64, 2.5)
        assert mem.load_scalar(addr, F64) == 2.5

    def test_f32_storage_rounds(self):
        mem = Memory()
        addr = mem.allocate(16)
        mem.store_scalar(addr, F32, 0.1)
        assert mem.load_scalar(addr, F32) != 0.1
        assert math.isclose(mem.load_scalar(addr, F32), 0.1, rel_tol=1e-6)

    def test_int_storage_wraps(self):
        mem = Memory()
        addr = mem.allocate(16)
        mem.store_scalar(addr, I8, 300)
        assert mem.load_scalar(addr, I8) == 44

    def test_vector_round_trip(self):
        mem = Memory()
        vt = vector_of(F64, 4)
        addr = mem.allocate(64)
        mem.store_value(addr, vt, (1.0, 2.0, 3.0, 4.0))
        assert mem.load_value(addr, vt) == (1.0, 2.0, 3.0, 4.0)

    def test_vector_overlays_scalars(self):
        # A vector store must be observable via scalar loads: this is the
        # property that makes vector-load codegen correct.
        mem = Memory()
        vt = vector_of(I64, 2)
        addr = mem.allocate(64)
        mem.store_value(addr, vt, (7, 8))
        assert mem.load_scalar(addr, I64) == 7
        assert mem.load_scalar(addr + 8, I64) == 8

    def test_out_of_bounds(self):
        mem = Memory(size=256)
        with pytest.raises(MemoryError_):
            mem.load_scalar(1024, I64)
        with pytest.raises(MemoryError_):
            mem.load_scalar(0, I64)  # null page

    def test_oom(self):
        mem = Memory(size=128)
        with pytest.raises(MemoryError_):
            mem.allocate(4096)

    def test_global_binding_and_initializer(self):
        module = Module("m")
        module.add_global("A", I64, 4, [1, 2, 3, 4])
        interp = Interpreter(module)
        assert interp.read_global("A") == [1, 2, 3, 4]

    def test_write_global_length_checked(self):
        module = Module("m")
        module.add_global("A", I64, 2)
        interp = Interpreter(module)
        with pytest.raises(MemoryError_):
            interp.write_global("A", [1, 2, 3])


def _binary_function(opcode_name, type_=F64, ret=F64):
    module = Module("m")
    function = Function("f", [("a", type_), ("b", type_)], ret)
    module.add_function(function)
    builder = IRBuilder(function.add_block("entry"))
    result = getattr(builder, opcode_name)(*function.arguments)
    builder.ret(result)
    return module


class TestScalarExecution:
    def test_arith(self):
        assert Interpreter(_binary_function("fadd")).run("f", [1.5, 2.0]) == 3.5
        assert Interpreter(_binary_function("fdiv")).run("f", [1.0, 4.0]) == 0.25
        assert Interpreter(_binary_function("sub", I64, I64)).run("f", [3, 10]) == -7

    def test_integer_wrap_on_execution(self):
        module = _binary_function("add", I64, I64)
        huge = (1 << 63) - 1
        assert Interpreter(module).run("f", [huge, 1]) == -(1 << 63)

    def test_sdiv_by_zero_traps(self):
        module = _binary_function("sdiv", I64, I64)
        with pytest.raises(TrapError):
            Interpreter(module).run("f", [1, 0])

    def test_store_load_via_globals(self):
        module = build_simple_store_module(num_lanes=2)
        out = run_kernel(
            module, "kernel", [0],
            inputs={"B": [1.0] * 64, "C": [2.0] * 64},
        )
        assert out["A"][0] == 3.0 and out["A"][1] == 3.0
        assert out["A"][2] == 0.0

    def test_wrong_arity_rejected(self):
        module = _binary_function("fadd")
        with pytest.raises(InterpreterError):
            Interpreter(module).run("f", [1.0])

    def test_intrinsics(self):
        module = Module("m")
        function = Function("f", [("x", F64)], F64)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        builder.ret(builder.call("sqrt", [function.arguments[0]]))
        assert Interpreter(module).run("f", [9.0]) == 3.0

    def test_select_and_cmp(self):
        module = Module("m")
        function = Function("f", [("a", I64), ("b", I64)], I64)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        a, b = function.arguments
        cond = builder.icmp(CmpPredicate.LT, a, b)
        builder.ret(builder.select(cond, a, b))
        assert Interpreter(module).run("f", [3, 7]) == 3
        assert Interpreter(module).run("f", [9, 7]) == 7

    def test_casts(self):
        module = Module("m")
        function = Function("f", [("n", I64)], F64)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        builder.ret(builder.sitofp(function.arguments[0], F64))
        assert Interpreter(module).run("f", [5]) == 5.0


class TestVectorExecution:
    def test_vector_arith_and_movement(self):
        module = Module("m")
        vt = vector_of(F64, 2)
        function = Function("f", [("v", vt)], F64)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        v = function.arguments[0]
        doubled = builder.fadd(v, v)
        swapped = builder.shufflevector(doubled, doubled, [1, 0])
        alt = builder.altbinop([Opcode.FADD, Opcode.FSUB], doubled, swapped)
        builder.ret(builder.extractelement(alt, 0))
        # doubled=(2,4) swapped=(4,2) alt=(2+4, 4-2) -> lane0 = 6
        assert Interpreter(module).run("f", [(1.0, 2.0)]) == 6.0

    def test_insertelement_functional(self):
        module = Module("m")
        vt = vector_of(I64, 2)
        function = Function("f", [("v", vt)], vt)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        updated = builder.insertelement(function.arguments[0], Constant(I64, 9), 1)
        builder.ret(updated)
        assert Interpreter(module).run("f", [(1, 2)]) == (1, 9)

    def test_out_of_range_lane_traps(self):
        module = Module("m")
        vt = vector_of(I64, 2)
        function = Function("f", [("v", vt), ("lane", I64)], I64)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        # use the i64 lane arg directly (interpreter checks bounds)
        from repro.ir.instructions import ExtractElementInst

        ext = builder.insert(ExtractElementInst(function.arguments[0], function.arguments[1]))
        builder.ret(ext)
        with pytest.raises(TrapError):
            Interpreter(module).run("f", [(1, 2), 5])


class TestControlFlow:
    def test_loop_executes_n_times(self):
        module = build_loop_module()
        out = run_kernel(module, "count", [10])
        assert out["A"][:10] == list(range(10))

    def test_instruction_budget(self):
        module = build_loop_module()
        interp = Interpreter(module, max_steps=50)
        with pytest.raises(InterpreterError, match="budget"):
            interp.run("count", [10**9])

    def test_instruction_budget_alias_warns(self):
        module = build_loop_module()
        with pytest.warns(DeprecationWarning, match="max_steps"):
            interp = Interpreter(module, instruction_budget=50)
        assert interp.instruction_budget == 50
        with pytest.raises(InterpreterError, match="budget"):
            interp.run("count", [10**9])

    def test_entry_phi_rejected(self):
        module = Module("m")
        function = Function("f", [], VOID)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        builder.phi(I64)
        builder.ret()
        with pytest.raises(InterpreterError):
            Interpreter(module).run("f", [])


def build_loop_module() -> Module:
    """for i in range(n): A[i] = i"""
    module = Module("loop")
    module.add_global("A", I64, 64)
    function = Function("count", [("n", I64)], VOID)
    module.add_function(function)
    entry = function.add_block("entry")
    header = function.add_block("header")
    body = function.add_block("body")
    done = function.add_block("done")
    b = IRBuilder(entry)
    b.br(header)
    b.position_at_end(header)
    i = b.phi(I64, "i")
    cond = b.icmp(CmpPredicate.LT, i, function.arguments[0])
    b.condbr(cond, body, done)
    b.position_at_end(body)
    b.store(i, b.gep(module.global_named("A"), i))
    inc = b.add(i, b.const_i64(1))
    b.br(header)
    i.add_incoming(b.const_i64(0), entry)
    i.add_incoming(inc, body)
    b.position_at_end(done)
    b.ret()
    return module


class TestArgumentCoercion:
    def test_global_buffer_as_pointer_argument(self):
        from repro.ir import pointer_to

        module = Module("m")
        module.add_global("A", F64, 8, [1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0])
        function = Function("f", [("p", pointer_to(F64))], F64)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        loaded = builder.load(builder.gep(function.arguments[0], 2))
        builder.ret(loaded)
        interp = Interpreter(module)
        buffer = module.global_named("A")
        assert interp.run("f", [buffer]) == 3.0

    def test_integer_argument_wraps(self):
        module = Module("m")
        function = Function("f", [("n", I8)], I8)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        builder.ret(function.arguments[0])
        assert Interpreter(module).run("f", [300]) == 44

    def test_vector_argument_coerced_to_tuple(self):
        module = Module("m")
        vt = vector_of(F64, 2)
        function = Function("f", [("v", vt)], vt)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        builder.ret(function.arguments[0])
        assert Interpreter(module).run("f", [[1.0, 2.0]]) == (1.0, 2.0)

    def test_float_argument_coerced(self):
        module = Module("m")
        function = Function("f", [("x", F64)], F64)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        builder.ret(function.arguments[0])
        assert Interpreter(module).run("f", [3]) == 3.0


class TestVectorSelectSemantics:
    def test_per_lane_mask_pick(self):
        from repro.ir import I1

        module = Module("m")
        vt = vector_of(I64, 4)
        mt = vector_of(I1, 4)
        function = Function("f", [("m", mt), ("a", vt), ("b", vt)], vt)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        m, a, b = function.arguments
        builder.ret(builder.select(m, a, b))
        out = Interpreter(module).run(
            "f", [(1, 0, 1, 0), (10, 20, 30, 40), (-1, -2, -3, -4)]
        )
        assert out == (10, -2, 30, -4)
