"""Super-Node lane-chain tests: construction, APO, leaf/trunk moves.

These test the paper's Section IV mechanics directly on single lanes:
APO annotation (IV-C1), leaf reorder legality (IV-C2) and trunk movement
(IV-C3), including the Figure 3 and Figure 4 scenarios.
"""

import random

import pytest

from repro.ir import (
    F64,
    I64,
    VOID,
    Function,
    IRBuilder,
    Module,
    Opcode,
)
from repro.vectorizer import build_lane_chain, chain_family_of
from repro.vectorizer.supernode import APO_MINUS, APO_PLUS, LaneChain


def _builder(type_=I64):
    module = Module("m")
    for name in "ABCDEFG":
        module.add_global(name, type_, 64)
    function = Function("f", [("i", I64)], VOID, fast_math=True)
    module.add_function(function)
    builder = IRBuilder(function.add_block("entry"))
    i = function.arguments[0]
    loads = {}

    def load(name, off=0):
        key = (name, off)
        if key not in loads:
            idx = builder.add(i, builder.const_i64(off)) if off else i
            loads[key] = builder.load(
                builder.gep(module.global_named(name), idx), name=f"{name}{off}"
            )
        return loads[key]

    return builder, load


class TestChainFamily:
    def test_families(self):
        assert chain_family_of(Opcode.ADD) is Opcode.ADD
        assert chain_family_of(Opcode.SUB) is Opcode.ADD
        assert chain_family_of(Opcode.FDIV) is Opcode.FMUL
        assert chain_family_of(Opcode.SDIV) is None  # no integer inverse
        assert chain_family_of(Opcode.XOR) is None


class TestChainConstruction:
    def test_two_trunk_chain(self):
        b, load = _builder()
        root = b.add(b.sub(load("B"), load("C")), load("D"))
        b.store(root, b.gep(b.block.parent.parent.global_named("A"), 0))
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        assert chain is not None
        assert chain.size() == 2
        assert len(chain.slots()) == 3

    def test_single_op_is_not_a_chain(self):
        b, load = _builder()
        root = b.add(load("B"), load("C"))
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        assert chain is None  # min legal size is 2 (paper Section V-A)

    def test_multinode_stops_at_inverse(self):
        b, load = _builder()
        root = b.add(b.sub(load("B"), load("C")), load("D"))
        assert build_lane_chain(root, allow_inverse=False, fast_math=True) is None

    def test_multinode_grows_through_commutative(self):
        b, load = _builder()
        root = b.add(b.add(load("B"), load("C")), load("D"))
        chain = build_lane_chain(root, allow_inverse=False, fast_math=True)
        assert chain is not None and chain.size() == 2

    def test_inverse_root_allowed_only_for_supernode(self):
        b, load = _builder()
        root = b.sub(b.add(load("B"), load("D")), load("C"))
        assert build_lane_chain(root, allow_inverse=False, fast_math=True) is None
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        assert chain is not None and chain.size() == 2

    def test_float_requires_fast_math(self):
        b, load = _builder(F64)
        root = b.fadd(b.fsub(load("B"), load("C")), load("D"))
        assert build_lane_chain(root, allow_inverse=True, fast_math=False) is None
        assert build_lane_chain(root, allow_inverse=True, fast_math=True) is not None

    def test_integer_needs_no_fast_math(self):
        b, load = _builder()
        root = b.add(b.sub(load("B"), load("C")), load("D"))
        assert build_lane_chain(root, allow_inverse=True, fast_math=False) is not None

    def test_multi_use_operand_becomes_leaf(self):
        b, load = _builder()
        shared = b.sub(load("B"), load("C"))
        b.store(shared, b.gep(b.block.parent.parent.global_named("E"), 0))
        root = b.add(shared, load("D"))
        root2 = b.add(root, load("E"))
        chain = build_lane_chain(root2, allow_inverse=True, fast_math=True)
        # shared has 2 uses, so it must be a leaf, not a trunk
        assert chain is not None
        leaf_ids = {id(v) for v in chain.leaf_values()}
        assert id(shared) in leaf_ids

    def test_mul_div_family(self):
        b, load = _builder(F64)
        root = b.fmul(b.fdiv(load("B"), load("C")), load("D"))
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        assert chain is not None
        assert chain.family is Opcode.FMUL

    def test_max_trunks_respected(self):
        b, load = _builder()
        expr = load("B")
        for k in range(10):
            expr = b.add(expr, load("C", k))
        chain = build_lane_chain(expr, allow_inverse=True, fast_math=True, max_trunks=4)
        assert chain is not None
        assert chain.size() <= 4


class TestAPO:
    def test_fig4a_example(self):
        # A - (B + C): APO(A)='+', APO(B)='-', APO(C)='-'
        b, load = _builder()
        inner = b.add(load("B"), load("C"))
        root = b.sub(load("A"), inner)
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        apos = {
            chain.leaf_at(slot).value.name: chain.slot_apo(slot)
            for slot in chain.slots()
        }
        assert apos == {"A0": APO_PLUS, "B0": APO_MINUS, "C0": APO_MINUS}

    def test_nested_double_negation(self):
        # A - (B - C): C sits under two RHS-of-sub edges -> APO '+'
        b, load = _builder()
        inner = b.sub(load("B"), load("C"))
        root = b.sub(load("A"), inner)
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        apos = {
            chain.leaf_at(slot).value.name: chain.slot_apo(slot)
            for slot in chain.slots()
        }
        assert apos == {"A0": APO_PLUS, "B0": APO_MINUS, "C0": APO_PLUS}

    def test_left_spine_apos(self):
        # ((B - C) + D) - E
        b, load = _builder()
        root = b.sub(b.add(b.sub(load("B"), load("C")), load("D")), load("E"))
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        apos = {
            chain.leaf_at(slot).value.name: chain.slot_apo(slot)
            for slot in chain.slots()
        }
        assert apos == {
            "B0": APO_PLUS,
            "C0": APO_MINUS,
            "D0": APO_PLUS,
            "E0": APO_MINUS,
        }

    def test_trunk_apos(self):
        # A - (B + C): the inner add hangs off the RHS of a sub -> APO '-'
        b, load = _builder()
        inner = b.add(load("B"), load("C"))
        root = b.sub(load("A"), inner)
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        apos = chain.trunk_apos()
        assert apos[()] is False  # root is '+'
        assert apos[(1,)] is True  # inner add under RHS of sub

    def test_slots_ordered_root_first(self):
        b, load = _builder()
        root = b.add(b.sub(load("B"), load("C")), load("D"))
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        depths = [slot.depth for slot in chain.slots()]
        assert depths == sorted(depths)
        assert depths[0] == 0


class TestLeafSwaps:
    def test_same_apo_swap_legal_and_semantics_preserved(self):
        b, load = _builder()
        root = b.add(b.sub(load("B"), load("C")), load("D"))
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        slots = chain.slots()
        by_name = {chain.leaf_at(s).value.name: s for s in slots}
        env = {id(chain.leaf_at(s).value): v for s, v in zip(slots, (11.0, 5.0, 2.0))}
        before = chain.evaluate(env)
        assert chain.can_swap_leaves(by_name["B0"], by_name["D0"])
        chain.swap_leaves(by_name["B0"], by_name["D0"])
        assert chain.evaluate(env) == before

    def test_cross_apo_swap_illegal(self):
        b, load = _builder()
        root = b.add(b.sub(load("B"), load("C")), load("D"))
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        by_name = {chain.leaf_at(s).value.name: s for s in chain.slots()}
        assert not chain.can_swap_leaves(by_name["C0"], by_name["D0"])


class TestTrunkSwaps:
    def _fig3_lane1(self):
        # (B + D) - C
        b, load = _builder()
        root = b.sub(b.add(load("B"), load("D")), load("C"))
        return build_lane_chain(root, allow_inverse=True, fast_math=True)

    def test_fig3_trunk_swap_legal(self):
        chain = self._fig3_lane1()
        env = {
            id(chain.leaf_at(s).value): v
            for s, v in zip(chain.slots(), (3.0, 10.0, 4.0))
        }
        before = chain.evaluate(env)
        paths = [path for path, _ in chain.trunks()]
        assert chain.try_swap_trunks(paths[0], paths[1])
        assert chain.evaluate(env) == before
        # after the swap the structure is ((? - C) + ?) with C now deeper
        root_opcode = chain.root.opcode
        assert root_opcode is Opcode.ADD

    def test_apos_preserved_by_trunk_swap(self):
        chain = self._fig3_lane1()
        before = {
            chain.leaf_at(s).value.name: chain.slot_apo(s) for s in chain.slots()
        }
        paths = [path for path, _ in chain.trunks()]
        assert chain.try_swap_trunks(paths[0], paths[1])
        after = {
            chain.leaf_at(s).value.name: chain.slot_apo(s) for s in chain.slots()
        }
        assert before == after

    def test_fig4c_style_illegal_swap_refused(self):
        # A - (B - C): swapping the two subs must fail if it would flip
        # any leaf's APO; try_swap_trunks must leave the chain untouched.
        b, load = _builder()
        inner = b.sub(load("B"), load("C"))
        root = b.sub(load("A"), inner)
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        env = {
            id(chain.leaf_at(s).value): v
            for s, v in zip(chain.slots(), (7.0, 3.0, 1.0))
        }
        before_value = chain.evaluate(env)
        before_repr = repr(chain)
        paths = [path for path, _ in chain.trunks()]
        chain.try_swap_trunks(paths[0], paths[1])  # may succeed or not...
        # ...but semantics must hold either way
        assert chain.evaluate(env) == before_value
        if repr(chain) == before_repr:
            pass  # refused: fine

    def test_swap_same_position_refused(self):
        chain = self._fig3_lane1()
        assert not chain.try_swap_trunks((), ())


class TestPlaceLeaf:
    def test_place_via_trunk_swap(self):
        b, load = _builder()
        root = b.sub(b.add(load("B"), load("D")), load("C"))
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        env = {
            id(chain.leaf_at(s).value): v
            for s, v in zip(chain.slots(), (9.0, 2.0, 5.0))
        }
        before = chain.evaluate(env)
        target = chain.slots()[0]
        moved_value = next(v for v in chain.leaf_values() if v.name == "B0")
        assert chain.place_leaf(moved_value, target)
        assert chain.leaf_at(chain.slots()[0]).value.name == "B0"
        assert chain.evaluate(env) == before

    def test_place_respects_locked_slots(self):
        b, load = _builder()
        root = b.add(b.add(load("B"), load("C")), load("D"))
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        slots = chain.slots()
        d = chain.leaf_at(slots[0]).value  # D at root slot
        locked = {slots[0]: d}
        c = next(v for v in chain.leaf_values() if v.name == "C0")
        # moving C into the root slot would evict locked D -> must fail
        assert not chain.can_place_leaf(c, slots[0], locked)
        # moving C within unlocked slots is fine
        assert chain.can_place_leaf(c, slots[2], locked)

    def test_failed_place_leaves_chain_untouched(self):
        b, load = _builder()
        root = b.add(b.sub(load("B"), load("C")), load("D"))
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        snapshot = repr(chain)
        slots = chain.slots()
        # lock everything; any real move must fail and restore state
        locked = {s: chain.leaf_at(s).value for s in slots}
        c = next(v for v in chain.leaf_values() if v.name == "C0")
        # C currently sits at slots[2]; moving it to slots[1] would evict
        # the locked B, so the move must fail and restore state.
        assert not chain.place_leaf(c, slots[1], locked)
        assert repr(chain) == snapshot


class TestCloneAndEval:
    def test_clone_is_deep(self):
        b, load = _builder()
        root = b.add(b.sub(load("B"), load("C")), load("D"))
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        copy = chain.clone()
        slots = chain.slots()
        chain.swap_leaves(slots[1], slots[2])  # B<->C illegal semantically but raw
        assert repr(copy) != repr(chain)

    def test_signed_terms_match_evaluation(self):
        b, load = _builder()
        root = b.sub(b.add(b.sub(load("B"), load("C")), load("D")), load("E"))
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        rng = random.Random(3)
        env = {id(v): rng.uniform(1, 9) for v in chain.leaf_values()}
        folded = sum(
            -env[id(value)] if apo else env[id(value)]
            for apo, value in chain.signed_terms()
        )
        assert chain.evaluate(env) == pytest.approx(folded)

    def test_mul_div_evaluation(self):
        b, load = _builder(F64)
        root = b.fmul(b.fdiv(load("B"), load("C")), load("D"))
        chain = build_lane_chain(root, allow_inverse=True, fast_math=True)
        slots = chain.slots()
        env = {id(chain.leaf_at(s).value): v for s, v in zip(slots, (2.0, 8.0, 4.0))}
        # ((B / C) * D) with D at root slot...: evaluate must honour shape
        value = chain.evaluate(env)
        names = [chain.leaf_at(s).value.name for s in slots]
        assert names == ["D0", "B0", "C0"]
        assert value == (8.0 / 4.0) * 2.0
