"""Metrics tests: histograms, the registry on/off contract, Prometheus
exposition, session sharing/merging, and the instrumented call sites
(cache hit-rate gauge, parallel overhead counters)."""

import pytest

from repro.kernels import kernel_named
from repro.observe import StatsRegistry
from repro.observe.metrics import (
    DEFAULT_BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
    exact_percentile,
)
from repro.observe.metrics import _NULL_TIMER
from repro.observe.session import CompilerSession, current_metrics, use_session
from repro.vectorizer import SNSLP_CONFIG, compile_module


class TestExactPercentile:
    def test_empty_is_zero(self):
        assert exact_percentile([], 50) == 0.0

    def test_single_value(self):
        assert exact_percentile([7.5], 99) == 7.5

    def test_median_interpolates_even_count(self):
        assert exact_percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        data = [5.0, 1.0, 3.0]
        assert exact_percentile(data, 0) == 1.0
        assert exact_percentile(data, 100) == 5.0


class TestHistogram:
    def test_summary_counts_and_sum(self):
        h = Histogram("t")
        for value in (0.001, 0.002, 0.003):
            h.observe(value)
        s = h.summary()
        assert s["count"] == 3
        assert s["sum"] == pytest.approx(0.006)
        assert s["min"] == 0.001
        assert s["max"] == 0.003

    def test_empty_summary_is_zeros(self):
        assert Histogram("t").summary() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }

    def test_single_value_percentiles_exact(self):
        h = Histogram("t")
        h.observe(42.0)
        assert h.percentile(50) == 42.0
        assert h.percentile(99) == 42.0

    def test_percentiles_monotone_and_bounded(self):
        h = Histogram("t")
        for value in range(1, 101):
            h.observe(float(value))
        p50, p90, p99 = h.percentile(50), h.percentile(90), h.percentile(99)
        assert 1.0 <= p50 <= p90 <= p99 <= 100.0
        # bucket estimate should land near the exact answer
        assert p50 == pytest.approx(50.0, rel=0.7)

    def test_overflow_bucket_catches_huge_values(self):
        h = Histogram("t")
        h.observe(1e12)  # above the last bound (5e7)
        assert h.count == 1
        assert h.counts[-1] == 1
        assert h.percentile(99) == 1e12

    def test_merge_folds_counts_and_extremes(self):
        a, b = Histogram("t"), Histogram("t")
        a.observe(1.0)
        b.observe(100.0)
        a.merge(b)
        assert a.count == 2
        assert a.vmin == 1.0 and a.vmax == 100.0
        assert a.total == 101.0

    def test_merge_rejects_different_bounds(self):
        a = Histogram("t")
        b = Histogram("t", bounds=(1.0, 2.0))
        with pytest.raises(ValueError, match="bounds mismatch"):
            a.merge(b)


class TestRegistryContract:
    def test_disabled_by_default_and_inert(self):
        m = MetricsRegistry()
        assert not m.enabled
        m.gauge("g", 1.0)
        m.observe("h", 1.0)
        assert m.gauges == {}
        assert m.histograms == {}

    def test_disabled_timer_is_shared_null_singleton(self):
        m = MetricsRegistry()
        assert m.timer("x") is _NULL_TIMER
        assert m.timer("y") is _NULL_TIMER

    def test_gauge_last_write_wins(self):
        m = MetricsRegistry(enabled=True)
        m.gauge("g", 1.0)
        m.gauge("g", 2.0)
        assert m.gauges["g"] == 2.0

    def test_timer_records_even_when_body_raises(self):
        m = MetricsRegistry(enabled=True)
        with pytest.raises(RuntimeError):
            with m.timer("t.seconds"):
                raise RuntimeError("boom")
        assert m.histograms["t.seconds"].count == 1

    def test_merge_registries(self):
        a, b = MetricsRegistry(enabled=True), MetricsRegistry(enabled=True)
        a.observe("h", 1.0)
        b.observe("h", 2.0)
        b.gauge("g", 9.0)
        a.merge(b)
        assert a.histograms["h"].count == 2
        assert a.gauges["g"] == 9.0

    def test_flat_summary_shape(self):
        m = MetricsRegistry(enabled=True)
        m.gauge("rate", 0.5)
        m.observe("h", 2.0)
        flat = m.flat_summary()
        assert flat["rate"] == 0.5
        assert flat["h.count"] == 1.0
        assert flat["h.p50"] == 2.0
        assert flat["h.sum"] == 2.0


class TestExposition:
    def test_counters_gauges_histograms_rendered(self):
        stats = StatsRegistry()
        stats.stat("slp.graphs-vectorized", "graphs vectorized").add(3)
        m = MetricsRegistry(enabled=True)
        m.gauge("cache.hit_rate", 0.75, description="cache hits over lookups")
        m.observe("phase.vectorize.seconds", 0.002)
        text = m.render_exposition(stats)
        assert "# TYPE repro_slp_graphs_vectorized_total counter" in text
        assert "repro_slp_graphs_vectorized_total 3" in text
        assert "# TYPE repro_cache_hit_rate gauge" in text
        assert "repro_cache_hit_rate 0.75" in text
        assert "# HELP repro_cache_hit_rate cache hits over lookups" in text
        assert "# TYPE repro_phase_vectorize_seconds histogram" in text
        assert 'repro_phase_vectorize_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_phase_vectorize_seconds_count 1" in text
        assert text.endswith("\n")

    def test_write_exposition_roundtrip(self, tmp_path):
        m = MetricsRegistry(enabled=True)
        m.gauge("g", 1.5)
        path = tmp_path / "metrics.prom"
        m.write_exposition(str(path))
        assert "repro_g 1.5" in path.read_text()


class TestSessionIntegration:
    def test_derive_shares_metrics_registry(self):
        session = CompilerSession(name="parent")
        session.metrics.enable()
        child = session.derive(name="child")
        assert child.metrics is session.metrics
        with use_session(child):
            current_metrics().observe("x", 1.0)
        assert session.metrics.histograms["x"].count == 1

    def test_compile_populates_phase_histograms(self):
        session = CompilerSession(name="metrics-on")
        session.metrics.enable()
        with use_session(session):
            compile_module(kernel_named("motiv-leaf-reorder").build(), SNSLP_CONFIG)
        names = set(session.metrics.histograms)
        assert "phase.vectorize.seconds" in names
        assert "compile.seconds" in names
        assert session.metrics.histograms["compile.seconds"].count == 1

    def test_metrics_off_session_records_nothing_during_compile(self):
        session = CompilerSession(name="metrics-off")
        assert not session.metrics.enabled
        with use_session(session):
            compile_module(kernel_named("motiv-leaf-reorder").build(), SNSLP_CONFIG)
        assert session.metrics.histograms == {}
        assert session.metrics.gauges == {}


class TestMetricsOffBitIdentical:
    def test_kernel_run_identical_with_and_without_metrics(self):
        """A metrics-armed bench run must not perturb cycles, outputs or
        the counter snapshot (the journal/tracer contract)."""
        from repro.bench import run_kernel_config

        kernel = kernel_named("motiv-trunk-reorder")
        plain = run_kernel_config(kernel, SNSLP_CONFIG)

        armed = CompilerSession(name="metrics-armed")
        armed.metrics.enable()
        with use_session(armed):
            metered = run_kernel_config(kernel, SNSLP_CONFIG)

        assert metered.cycles == plain.cycles
        assert metered.instructions == plain.instructions
        assert metered.outputs == plain.outputs
        assert metered.counters == plain.counters
        # ... and the armed run did record distributions
        assert armed.metrics.histograms["bench.kernel.cycles"].count == 1


class TestCacheHitRateGauge:
    def test_hit_rate_gauge_tracks_lookups(self):
        from repro.vectorizer.cache import CompileCache, cached_compile_module

        session = CompilerSession(name="cache-metrics")
        session.metrics.enable()
        cache = CompileCache()
        module = kernel_named("motiv-leaf-reorder").build
        with use_session(session):
            cached_compile_module(module(), SNSLP_CONFIG, cache=cache)
            assert session.metrics.gauges["cache.hit_rate"] == 0.0
            cached_compile_module(module(), SNSLP_CONFIG, cache=cache)
        assert session.metrics.gauges["cache.hit_rate"] == 0.5
        assert session.metrics.histograms["cache.lookup.seconds"].count == 2

    def test_no_gauge_when_metrics_disabled(self):
        from repro.vectorizer.cache import CompileCache, cached_compile_module

        session = CompilerSession(name="cache-plain")
        with use_session(session):
            cached_compile_module(
                kernel_named("motiv-leaf-reorder").build(),
                SNSLP_CONFIG,
                cache=CompileCache(),
            )
        assert session.metrics.gauges == {}


class TestParallelOverheadMetrics:
    def test_parallel_counters_land_in_parent_session_only(self):
        from repro.bench import run_suite_parallel
        from repro.vectorizer import LSLP_CONFIG

        kernels = [kernel_named("motiv-leaf-reorder")]
        configs = [LSLP_CONFIG, SNSLP_CONFIG]
        parent = CompilerSession(name="parallel-metrics")
        parent.metrics.enable()
        with use_session(parent):
            results = run_suite_parallel(kernels=kernels, configs=configs, jobs=2)
        counters = parent.stats.snapshot()
        assert counters["parallel.tasks"] == 3  # 2 configs + O3 oracle
        assert "parallel.overhead_seconds" in counters
        assert "parallel.marshal_seconds" in counters
        assert "parallel.spawn_seconds" in counters
        hists = parent.metrics.histograms
        assert hists["parallel.task.worker_seconds"].count == 3
        assert hists["parallel.task.turnaround_seconds"].count == 3
        assert hists["parallel.task.marshal_seconds"].count == 3
        assert hists["parallel.dispatch.overhead_seconds"].count == 1
        # the per-run counter snapshots never see driver overhead
        for matrix in results.values():
            for run in matrix.values():
                assert "parallel.overhead_seconds" not in run.counters
