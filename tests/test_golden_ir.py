"""Golden-file tests: the motivating kernels' textual IR is pinned.

These catch accidental changes to the printer, the builder helpers or the
kernels themselves — any of which would silently shift the paper-exact
cost numbers the headline tests rely on.  Regenerate (after an intentional
change) with::

    python - <<'PY'
    from repro.kernels import kernel_named
    from repro.ir import print_module
    for name in ("motiv-leaf-reorder", "motiv-trunk-reorder"):
        open(f"tests/golden/{name}.ir", "w").write(
            print_module(kernel_named(name).build())
        )
    PY
"""

import pathlib

import pytest

from repro.ir import parse_module, print_module, verify_module
from repro.kernels import kernel_named

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN_KERNELS = ("motiv-leaf-reorder", "motiv-trunk-reorder")


@pytest.mark.parametrize("name", GOLDEN_KERNELS)
def test_kernel_ir_matches_golden(name):
    golden = (GOLDEN_DIR / f"{name}.ir").read_text()
    current = print_module(kernel_named(name).build())
    assert current == golden


@pytest.mark.parametrize("name", GOLDEN_KERNELS)
def test_golden_files_parse_and_verify(name):
    module = parse_module((GOLDEN_DIR / f"{name}.ir").read_text())
    verify_module(module)
    assert "kernel" in module.functions
