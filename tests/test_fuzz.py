"""Tests for the differential-testing & fuzzing subsystem (src/repro/fuzz/)."""

import json
import math
import os

import pytest

from repro.fuzz import (
    FUZZ_SHAPES,
    FuzzProgram,
    FuzzSpec,
    count_instructions,
    failure_signature,
    generate_program,
    is_nonzero_global,
    make_inputs,
    parse_budget,
    random_spec,
    reduce_module,
    replay_file,
    run_campaign,
    run_oracle,
    ulp_distance,
    values_close,
    write_reproducer,
)
from repro.fuzz.campaign import _reduction_predicate
from repro.interp import Interpreter, UnsupportedOpcodeError
from repro.ir import parse_module, print_module, verify_module
from repro.ir.instructions import Opcode
from repro.kernels.seeding import SeededSpec, derive_seed
from repro.machine import DEFAULT_TARGET
from repro.vectorizer import ALL_CONFIGS, compile_module
from repro.vectorizer.reorder import SuperNode


class TestSeeding:
    def test_derive_seed_deterministic(self):
        assert derive_seed(0, "x") == derive_seed(0, "x")
        assert derive_seed(0, "x") != derive_seed(0, "y")
        assert derive_seed(0, "x") != derive_seed(1, "x")

    def test_unlabeled_rng_matches_raw_seed(self):
        # historical streams (kernels.generator) must be preserved
        import random

        spec = SeededSpec(seed=42)
        assert spec.rng().random() == random.Random(42).random()

    def test_labeled_rngs_are_independent(self):
        spec = SeededSpec(seed=0)
        assert spec.rng("a").random() != spec.rng("b").random()


class TestGenprog:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FuzzSpec(shape="nope")
        with pytest.raises(ValueError):
            FuzzSpec(shape="addsub", lanes=1)
        with pytest.raises(ValueError):
            FuzzSpec(shape="addsub", terms=2)

    def test_every_shape_generates_verified_module(self):
        for shape in FUZZ_SHAPES:
            program = generate_program(FuzzSpec(seed=3, shape=shape))
            verify_module(program.module)
            assert program.kernel in program.module.functions

    def test_deterministic_per_seed(self):
        for shape in ("addsub", "mixed", "reduction"):
            a = generate_program(FuzzSpec(seed=9, shape=shape))
            b = generate_program(FuzzSpec(seed=9, shape=shape))
            assert print_module(a.module) == print_module(b.module)

    def test_different_seeds_differ(self):
        a = generate_program(FuzzSpec(seed=1, shape="addsub"))
        b = generate_program(FuzzSpec(seed=2, shape="addsub"))
        assert print_module(a.module) != print_module(b.module)

    def test_random_spec_covers_shapes(self):
        shapes = {random_spec(s).shape for s in range(64)}
        assert shapes == set(FUZZ_SHAPES)

    def test_nonzero_inputs_for_denominators(self):
        program = generate_program(FuzzSpec(seed=5, shape="muldiv"))
        inputs = make_inputs(program.module, input_seed=1)
        saw_denominator = False
        for name, values in inputs.items():
            if is_nonzero_global(name):
                saw_denominator = True
                assert all(0.5 <= v <= 4.0 for v in values)
        assert saw_denominator

    def test_roundtrips_through_printer_parser(self):
        program = generate_program(FuzzSpec(seed=11, shape="overlap"))
        text = print_module(program.module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert print_module(reparsed) == text


class TestUlpComparison:
    def test_identical(self):
        assert ulp_distance(1.0, 1.0) == 0

    def test_adjacent_doubles(self):
        assert ulp_distance(1.0, math.nextafter(1.0, 2.0)) == 1

    def test_across_zero(self):
        tiny = math.nextafter(0.0, 1.0)
        assert ulp_distance(-tiny, tiny) == 2

    def test_nan_handling(self):
        assert ulp_distance(float("nan"), float("nan")) == 0
        assert ulp_distance(float("nan"), 1.0) > (1 << 61)

    def test_inf_handling(self):
        assert ulp_distance(float("inf"), float("inf")) == 0
        assert ulp_distance(float("inf"), float("-inf")) > (1 << 61)

    def test_values_close(self):
        assert values_close(3, 3, is_float=False)
        assert not values_close(3, 4, is_float=False)
        assert values_close(1.0, 1.0 + 1e-14, is_float=True)
        assert not values_close(1.0, -1.0, is_float=True)
        # absolute tolerance floor near zero
        assert values_close(0.0, 1e-12, is_float=True)


class TestOracle:
    def test_clean_program_passes_all_configs(self):
        program = generate_program(FuzzSpec(seed=0, shape="addsub"))
        report = run_oracle(program)
        assert report.ok
        assert {o.config for o in report.outcomes} == {
            c.name for c in ALL_CONFIGS
        }
        for outcome in report.outcomes:
            assert outcome.status == "ok"
            assert math.isfinite(outcome.cycles) and outcome.cycles > 0

    def test_snslp_vectorizes_stress_shapes(self):
        program = generate_program(FuzzSpec(seed=0, shape="addsub"))
        report = run_oracle(program)
        by_name = {o.config: o for o in report.outcomes}
        assert by_name["SN-SLP"].vectorized_graphs > 0

    def test_report_json_roundtrip(self):
        program = generate_program(FuzzSpec(seed=4, shape="mixed"))
        report = run_oracle(program)
        document = report.to_json()
        assert json.loads(json.dumps(document)) == document

    def test_interpreter_gap_is_typed(self):
        # oracle relies on UnsupportedOpcodeError to distinguish an
        # interpreter gap from a miscompile
        program = generate_program(FuzzSpec(seed=0, shape="minmax"))
        module = program.module
        function = module.functions[program.kernel]
        from repro.ir.instructions import CallInst

        call = next(
            inst
            for block in function.blocks
            for inst in block.instructions
            if isinstance(inst, CallInst)
        )
        call.callee = "llvm.experimental.mystery"
        interp = Interpreter(module)
        for name, values in make_inputs(module, 1).items():
            interp.write_global(name, values)
        with pytest.raises(UnsupportedOpcodeError):
            interp.run(program.kernel, program.args)


def _flip_addsub_codegen(monkeypatch):
    """Inject a deliberate APO miscompile: SuperNode codegen emits FSUB
    where it meant FADD (and vice versa) on every root it returns."""
    original = SuperNode.generate_code

    def flipped(self):
        roots = original(self)
        for root in roots:
            if root.opcode is Opcode.FADD:
                root.opcode = Opcode.FSUB
            elif root.opcode is Opcode.FSUB:
                root.opcode = Opcode.FADD
        return roots

    monkeypatch.setattr(SuperNode, "generate_code", flipped)


class TestInjectedMiscompile:
    def test_sign_flip_is_caught(self, monkeypatch):
        _flip_addsub_codegen(monkeypatch)
        program = generate_program(FuzzSpec(seed=0, shape="addsub"))
        report = run_oracle(program)
        assert not report.ok
        signature = failure_signature(report)
        assert signature
        assert all(status == "mismatch" for _, status in signature)
        # only super-node configs run SuperNode codegen
        assert all(cfg in ("LSLP", "SN-SLP") for cfg, _ in signature)

    def test_reducer_shrinks_to_small_reproducer(self, monkeypatch):
        _flip_addsub_codegen(monkeypatch)
        program = generate_program(FuzzSpec(seed=0, shape="addsub"))
        report = run_oracle(program)
        signature = failure_signature(report)
        assert signature
        predicate = _reduction_predicate(
            signature,
            program.kernel,
            program.args,
            ALL_CONFIGS,
            DEFAULT_TARGET,
            input_seed=1,
            max_ulps=4096,
        )
        result = reduce_module(program.module, predicate)
        assert result.instructions_after <= 12
        assert result.instructions_after < result.instructions_before
        verify_module(result.module)
        assert predicate(result.module)


class TestReducer:
    def test_count_instructions(self):
        program = generate_program(FuzzSpec(seed=0, shape="addsub"))
        assert count_instructions(program.module) > 0

    def test_trivially_true_predicate_shrinks_hard(self):
        program = generate_program(FuzzSpec(seed=0, shape="addsub"))
        result = reduce_module(program.module, lambda m: True)
        # with no constraint everything but the terminator should go
        assert result.instructions_after <= 2
        verify_module(result.module)

    def test_false_predicate_keeps_module(self):
        program = generate_program(FuzzSpec(seed=0, shape="addsub"))
        before = print_module(program.module)
        result = reduce_module(program.module, lambda m: False)
        assert result.edits_applied == 0
        assert print_module(result.module) == before

    def test_write_reproducer_roundtrip(self, tmp_path):
        program = generate_program(FuzzSpec(seed=0, shape="muldiv"))
        path = tmp_path / "repro.ir"
        write_reproducer(program.module, str(path))
        reparsed = parse_module(path.read_text())
        verify_module(reparsed)


class TestCampaign:
    def test_parse_budget(self):
        assert parse_budget("200") == ("count", 200.0)
        assert parse_budget("30s") == ("time", 30.0)
        assert parse_budget("2m") == ("time", 120.0)
        assert parse_budget("1h") == ("time", 3600.0)
        with pytest.raises(ValueError):
            parse_budget("many")

    def test_count_campaign_deterministic(self):
        first = run_campaign(budget="40", seed=0)
        first_stats = dict(first.stats)
        second = run_campaign(budget="40", seed=0)
        assert first.programs == second.programs == 40
        assert first_stats == dict(second.stats)
        assert first.ok and second.ok
        assert first_stats["fuzz.programs-generated"] == 40
        assert first_stats["fuzz.programs-vectorized"] > 0

    def test_campaign_uses_private_session(self):
        # each compilation runs in its own derived session; campaign
        # bucket counters live in the campaign's session, and neither
        # leaks into the default (global alias) registry
        from repro.observe import STATS

        result = run_campaign(budget="5", seed=0)
        assert result.stats["fuzz.programs-generated"] == 5
        assert "fuzz.programs-generated" not in STATS.snapshot()
        assert "slp.seed-bundles" not in STATS.snapshot()

    def test_failure_artifacts_written(self, monkeypatch, tmp_path):
        _flip_addsub_codegen(monkeypatch)
        result = run_campaign(
            budget="3", seed=0, out_dir=str(tmp_path), max_failures=1
        )
        assert not result.ok
        failure = result.failures[0]
        assert failure.directory is not None
        names = set(os.listdir(failure.directory))
        assert {"original.ir", "reduced.ir", "report.json", "remarks.jsonl"} <= names
        document = json.loads(
            (tmp_path / os.path.basename(failure.directory) / "report.json").read_text()
        )
        reduction = document["reduction"]
        assert reduction["instructions_after"] < reduction["instructions_before"]
        # the saved reproducer replays to the same failure (with the
        # injection still active)
        report = replay_file(os.path.join(failure.directory, "reduced.ir"))
        assert not report.ok

    def test_replay_clean_reproducer(self, tmp_path):
        program = generate_program(FuzzSpec(seed=2, shape="mixed"))
        path = tmp_path / "clean.ir"
        write_reproducer(program.module, str(path))
        report = replay_file(str(path))
        assert report.ok

    def test_summary_mentions_failures(self, monkeypatch):
        _flip_addsub_codegen(monkeypatch)
        result = run_campaign(budget="3", seed=0, max_failures=1, reduce_failures=False)
        assert "failure" in result.summary()
        assert not result.ok
