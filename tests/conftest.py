"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence

import pytest

from repro.ir import (
    F64,
    I64,
    VOID,
    CmpPredicate,
    Function,
    IRBuilder,
    Module,
    verify_module,
)


def build_simple_store_module(num_lanes: int = 2, opcode: str = "fadd") -> Module:
    """``A[k] = B[k] <op> C[k]`` for k in 0..num_lanes-1, straight-line.

    A minimal SLP-vectorizable module used across many tests.
    """
    module = Module("simple")
    for name in "ABC":
        module.add_global(name, F64, 64)
    function = Function("kernel", [("i", I64)], VOID, fast_math=True)
    module.add_function(function)
    block = function.add_block("entry")
    builder = IRBuilder(block)
    i = function.arguments[0]
    for k in range(num_lanes):
        index = builder.add(i, builder.const_i64(k)) if k else i
        pa = builder.gep(module.global_named("A"), index)
        pb = builder.gep(module.global_named("B"), index)
        pc = builder.gep(module.global_named("C"), index)
        lhs = builder.load(pb)
        rhs = builder.load(pc)
        value = getattr(builder, opcode)(lhs, rhs)
        builder.store(value, pa)
    builder.ret()
    verify_module(module)
    return module


def assert_allclose(a: Sequence[float], b: Sequence[float], tol: float = 1e-9) -> None:
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert math.isclose(x, y, rel_tol=tol, abs_tol=tol), f"{x} != {y}"


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20190216)
