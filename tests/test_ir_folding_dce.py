"""Constant folding and dead code elimination tests."""

import math

import pytest

from repro.ir import (
    F32,
    F64,
    I8,
    I64,
    VOID,
    CmpPredicate,
    Constant,
    Function,
    IRBuilder,
    Module,
    Opcode,
    eliminate_dead_code,
    try_fold,
    vector_of,
)
from repro.ir.folding import FoldError, compare, fold_binary, fold_cast
from repro.ir.instructions import BinaryInst, CastInst, CmpInst


class TestFoldBinary:
    def test_int_add_wraps(self):
        assert fold_binary(Opcode.ADD, I8, 100, 100) == -56

    def test_int_sub_mul(self):
        assert fold_binary(Opcode.SUB, I64, 5, 9) == -4
        assert fold_binary(Opcode.MUL, I64, 7, 6) == 42

    def test_sdiv_truncates_toward_zero(self):
        # C semantics: -7 / 2 == -3 (not floor)
        assert fold_binary(Opcode.SDIV, I64, -7, 2) == -3
        assert fold_binary(Opcode.SDIV, I64, 7, 2) == 3

    def test_sdiv_by_zero_raises(self):
        with pytest.raises(FoldError):
            fold_binary(Opcode.SDIV, I64, 1, 0)

    def test_bitwise(self):
        assert fold_binary(Opcode.AND, I64, 0b1100, 0b1010) == 0b1000
        assert fold_binary(Opcode.OR, I64, 0b1100, 0b1010) == 0b1110
        assert fold_binary(Opcode.XOR, I64, 0b1100, 0b1010) == 0b0110
        assert fold_binary(Opcode.SHL, I64, 1, 4) == 16
        assert fold_binary(Opcode.ASHR, I64, -16, 2) == -4

    def test_float_ops(self):
        assert fold_binary(Opcode.FADD, F64, 1.5, 2.25) == 3.75
        assert fold_binary(Opcode.FSUB, F64, 1.0, 0.25) == 0.75
        assert fold_binary(Opcode.FMUL, F64, 3.0, -2.0) == -6.0
        assert fold_binary(Opcode.FDIV, F64, 1.0, 4.0) == 0.25

    def test_float_div_by_zero_gives_inf(self):
        assert math.isinf(fold_binary(Opcode.FDIV, F64, 1.0, 0.0))
        assert math.isnan(fold_binary(Opcode.FDIV, F64, 0.0, 0.0))

    def test_f32_rounding(self):
        # f32 arithmetic must round to binary32 precision.
        result = fold_binary(Opcode.FADD, F32, 1.0, 1e-9)
        assert result == 1.0


class TestCompareAndCast:
    def test_predicates(self):
        assert compare(CmpPredicate.LT, 1, 2) == 1
        assert compare(CmpPredicate.GE, 1, 2) == 0
        assert compare(CmpPredicate.EQ, 3, 3) == 1
        assert compare(CmpPredicate.NE, 3, 3) == 0
        assert compare(CmpPredicate.LE, 2, 2) == 1
        assert compare(CmpPredicate.GT, 3, 2) == 1

    def test_casts(self):
        assert fold_cast(Opcode.SITOFP, 3, F64) == 3.0
        assert fold_cast(Opcode.FPTOSI, -2.7, I64) == -2
        assert fold_cast(Opcode.TRUNC, 300, I8) == 44
        assert fold_cast(Opcode.FPTRUNC, 0.1, F32) != 0.1


class TestTryFold:
    def test_folds_constant_binary(self):
        inst = BinaryInst(Opcode.ADD, Constant(I64, 2), Constant(I64, 3))
        folded = try_fold(inst)
        assert isinstance(folded, Constant) and folded.value == 5

    def test_folds_vector_binary(self):
        vt = vector_of(I64, 2)
        inst = BinaryInst(
            Opcode.MUL, Constant(vt, (2, 3)), Constant(vt, (4, 5))
        )
        assert try_fold(inst).value == (8, 15)

    def test_folds_cmp(self):
        inst = CmpInst(
            Opcode.ICMP, CmpPredicate.LT, Constant(I64, 1), Constant(I64, 2)
        )
        assert try_fold(inst).value == 1

    def test_folds_cast(self):
        inst = CastInst(Opcode.SITOFP, Constant(I64, 7), F64)
        assert try_fold(inst).value == 7.0

    def test_no_fold_with_nonconstant(self):
        from repro.ir.values import Argument

        inst = BinaryInst(Opcode.ADD, Argument(I64, "a", 0), Constant(I64, 3))
        assert try_fold(inst) is None

    def test_no_fold_on_trap(self):
        inst = BinaryInst(Opcode.SDIV, Constant(I64, 1), Constant(I64, 0))
        assert try_fold(inst) is None


class TestDCE:
    def _function(self):
        module = Module("m")
        a = module.add_global("A", F64, 8)
        function = Function("f", [("i", I64)], VOID)
        module.add_function(function)
        builder = IRBuilder(function.add_block("entry"))
        return module, a, function, builder

    def test_removes_dead_chain(self):
        _, a, function, builder = self._function()
        live = builder.load(builder.gep(a, 0))
        dead1 = builder.fadd(live, Constant(F64, 1.0))
        builder.fmul(dead1, dead1)  # dead2, uses dead1
        builder.store(live, builder.gep(a, 1))
        builder.ret()
        removed = eliminate_dead_code(function)
        assert removed == 2
        opcodes = [inst.opcode for inst in function.entry]
        assert Opcode.FADD not in opcodes and Opcode.FMUL not in opcodes

    def test_keeps_side_effects(self):
        _, a, function, builder = self._function()
        builder.store(Constant(F64, 1.0), builder.gep(a, 0))
        builder.ret()
        assert eliminate_dead_code(function) == 0
        assert len(function.entry) == 3  # gep, store, ret

    def test_keeps_unused_loads_with_uses_only(self):
        # A load with no uses is pure in this IR and may be removed.
        _, a, function, builder = self._function()
        builder.load(builder.gep(a, 0))
        builder.ret()
        assert eliminate_dead_code(function) == 2  # load then its gep
