"""Benchmark harness tests: every figure function produces sane data."""

import pytest

from repro.bench import (
    compile_time_stats,
    fig5_kernel_speedups,
    fig6_aggregate_node_size,
    fig7_average_node_size,
    fig8_full_benchmark_speedups,
    fig9_aggregate_node_size_full,
    fig10_average_node_size_full,
    fig11_compile_time,
    format_rows,
    format_table1,
    outputs_match,
    run_kernel_matrix,
    speedup_over,
    table1_with_activation,
)
from repro.kernels import kernel_named
from repro.kernels.programs import PROGRAMS
from repro.machine import DEFAULT_TARGET

#: small kernel subset to keep harness tests fast
SMALL = [kernel_named("motiv-trunk-reorder"), kernel_named("plain-fma-lanes")]
MILC = [PROGRAMS[0]]


class TestRunner:
    def test_matrix_includes_o3_oracle(self):
        runs = run_kernel_matrix(SMALL[0], configs=(), target=DEFAULT_TARGET)
        assert "O3" in runs
        assert runs["O3"].correct

    def test_speedup_over(self):
        runs = run_kernel_matrix(SMALL[0], target=DEFAULT_TARGET)
        assert speedup_over(runs, "O3") == 1.0
        assert speedup_over(runs, "SN-SLP") > 1.0

    def test_outputs_match_exactness_contract(self):
        kernel = SMALL[0]
        got = {"A": [1, 2, 3]}
        assert outputs_match(kernel, got, {"A": [1, 2, 3]})
        assert not outputs_match(kernel, got, {"A": [1, 2, 4]})
        assert not outputs_match(kernel, got, {"A": [1, 2]})

    def test_run_fields_populated(self):
        runs = run_kernel_matrix(SMALL[0], target=DEFAULT_TARGET)
        run = runs["SN-SLP"]
        assert run.cycles > 0
        assert run.instructions > 0
        assert run.compile_seconds > 0
        assert run.vectorized_graphs == 1
        assert run.aggregate_node_size >= 2


class TestFigures:
    def test_fig5_shape_and_headline(self):
        rows = fig5_kernel_speedups(SMALL)
        assert [r["kernel"] for r in rows] == [
            "motiv-trunk-reorder",
            "plain-fma-lanes",
            "geomean",
        ]
        motiv = rows[0]
        assert motiv["SN-SLP"] > motiv["LSLP"]
        assert rows[-1]["SN-SLP"] >= rows[-1]["LSLP"]

    def test_fig6_totals(self):
        rows = fig6_aggregate_node_size(SMALL)
        total = rows[-1]
        assert total["kernel"] == "total"
        assert total["SN-SLP"] > total["LSLP"]

    def test_fig7_average_in_paper_band(self):
        rows = fig7_average_node_size(SMALL)
        average = rows[-1]
        assert average["kernel"] == "average"
        assert 2.0 <= average["SN-SLP"] <= 3.0

    def test_fig8_milc_speedup_near_two_percent(self):
        rows = fig8_full_benchmark_speedups(MILC)
        milc = rows[0]
        assert milc["benchmark"] == "433.milc"
        assert 1.01 <= milc["SN-SLP vs LSLP"] <= 1.03

    def test_fig9_and_10(self):
        rows9 = fig9_aggregate_node_size_full(MILC)
        assert rows9[-1]["benchmark"] == "total"
        assert rows9[-1]["SN-SLP"] > rows9[-1]["LSLP"]
        rows10 = fig10_average_node_size_full(MILC)
        assert rows10[0]["SN-SLP"] >= 2.0

    def test_fig11_compile_time_overhead_small(self):
        rows = fig11_compile_time(SMALL[:1], runs=3, warmup=1)
        row = rows[0]
        assert row["O3"] == 1.0
        # SN-SLP does real work, but the overhead must stay moderate
        assert row["SN-SLP"] < 25.0

    def test_compile_time_stats_protocol(self):
        stats = compile_time_stats(SMALL[0], runs=3, warmup=1)
        assert set(stats) == {"O3", "LSLP", "SN-SLP"}
        assert all(s.count == 3 for s in stats.values())


class TestTables:
    def test_table1_activation_flags(self):
        rows = table1_with_activation(SMALL)
        by_name = {r["kernel"]: r for r in rows}
        assert by_name["motiv-trunk-reorder"]["supernodes_formed"] >= 1
        assert by_name["motiv-trunk-reorder"]["supernodes_with_inverse"] >= 1
        assert by_name["plain-fma-lanes"]["supernodes_formed"] == 0
        assert by_name["plain-fma-lanes"]["vectorized"]

    def test_formatting(self):
        rows = [{"kernel": "k", "value": 1.234567}]
        text = format_rows(rows, title="T")
        assert text.splitlines()[0] == "T"
        assert "1.235" in text
        assert format_rows([], title="empty") == "empty"
        assert "Table I" in format_table1(table1_with_activation(SMALL))


class TestAsciiCharts:
    def test_bars_scale_to_peak(self):
        from repro.bench.ascii import render_bar_chart

        rows = [
            {"kernel": "a", "X": 1.0, "Y": 2.0},
            {"kernel": "b", "X": 4.0, "Y": 0.0},
        ]
        chart = render_bar_chart(rows, "kernel", ("X", "Y"), width=20)
        lines = chart.splitlines()
        assert len(lines) == 4
        # the 4.0 bar is fully filled, the 0.0 bar is empty
        full = next(l for l in lines if l.endswith("4.000"))
        empty = next(l for l in lines if l.endswith("0.000"))
        assert "#" * 20 in full
        assert "#" not in empty.split("|")[1]

    def test_non_numeric_cells_skipped(self):
        from repro.bench.ascii import render_bar_chart

        rows = [{"kernel": "geomean", "X": "n/a", "Y": 1.0}]
        chart = render_bar_chart(rows, "kernel", ("X", "Y"))
        assert chart.count("|") == 2  # only the numeric series drew a bar

    def test_render_figure_combines_table_and_chart(self):
        from repro.bench.ascii import render_figure

        rows = [{"kernel": "a", "X": 1.5}]
        text = render_figure(rows, "T", "kernel", ("X",))
        assert text.startswith("T")
        assert "|" in text and "1.500" in text

    def test_empty_rows(self):
        from repro.bench.ascii import render_bar_chart

        assert render_bar_chart([], "kernel", ("X",), title="t") == "t"


class TestMissedReasons:
    def test_histogram_on_unprofitable_graph(self):
        from repro.vectorizer import LSLP_CONFIG, compile_module

        kernel = kernel_named("motiv-leaf-reorder")
        compiled = compile_module(kernel.build(), LSLP_CONFIG, DEFAULT_TARGET)
        reasons = compiled.report.missed_reasons()
        assert reasons  # the non-adjacent load groups show up
        assert "non-consecutive loads" in reasons

    def test_empty_for_fully_vectorized(self):
        from repro.vectorizer import SNSLP_CONFIG, compile_module

        kernel = kernel_named("motiv-leaf-reorder")
        compiled = compile_module(kernel.build(), SNSLP_CONFIG, DEFAULT_TARGET)
        assert compiled.report.missed_reasons() == {}
