"""Robustness layer tests: fault injection, guarded driver, bisection.

The headline property: for *every* registered compile-time (site, mode)
combination, ``guarded_compile`` still returns runnable IR whose outputs
match the scalar interpreter, records a recovery remark + counters for
each rollback, and — for crash-class faults — can persist a reduced
``failure-NNNN/`` bundle replayable via ``repro bisect``.
"""

import json
import os

import pytest

from repro.cli import main
from repro.frontend import compile_source
from repro.fuzz import make_inputs, values_close
from repro.interp import (
    BudgetExceededError,
    Interpreter,
    InterpreterError,
)
from repro.ir import FloatType
from repro.machine import DEFAULT_TARGET
from repro.observe import REMARKS, STATS
from repro.robust import (
    BISECT,
    COMPILE_SITES,
    FAULT_SITES,
    FAULTS,
    FaultError,
    guarded_compile,
    parse_injection,
    resolve_ladder,
    run_bisect,
    site_named,
)
from repro.sim import simulate
from repro.vectorizer import compile_module, config_named

FIG3 = """
long A[1024]; long B[1024]; long C[1024]; long D[1024];

kernel fig3(n) {
  for (i = 0; i < n; i += 2) {
    A[i+0] = B[i+0] - C[i+0] + D[i+0];
    A[i+1] = B[i+1] + D[i+1] - C[i+1];
  }
}
"""

SNSLP = config_named("sn-slp")

#: every compile-reachable (site, mode) combination — the parametrized
#: recovery test must hold for all of them
COMPILE_COMBOS = [
    (name, mode) for name in COMPILE_SITES for mode in FAULT_SITES[name].modes
]


@pytest.fixture(autouse=True)
def _clean_robust_state():
    FAULTS.disarm_all()
    BISECT.disable()
    yield
    FAULTS.disarm_all()
    BISECT.disable()
    REMARKS.clear()
    REMARKS.disable()


def fig3_module():
    return compile_source(FIG3, module_name="fig3mod")


def scalar_reference(module, kernel="fig3", n=64, input_seed=1):
    """Deterministic inputs + the unoptimized module's outputs."""
    inputs = make_inputs(module, input_seed)
    interp = Interpreter(module)
    for name, values in inputs.items():
        interp.write_global(name, values)
    interp.run(kernel, (n,))
    return inputs, {name: interp.read_global(name) for name in module.globals}


def assert_matches_reference(compiled_module, module, inputs, reference, n=64):
    result = simulate(compiled_module, "fig3", DEFAULT_TARGET, [n], inputs=inputs)
    for name in module.globals:
        is_float = isinstance(module.globals[name].element, FloatType)
        for index, (want, got) in enumerate(
            zip(reference[name], result.globals_after[name])
        ):
            assert values_close(got, want, is_float), (
                f"@{name}[{index}]: reference {want!r} vs guarded {got!r}"
            )


class TestFaultRegistry:
    def test_parse_injection_defaults(self):
        assert parse_injection("codegen.emit") == ("codegen.emit", "raise", 0)
        assert parse_injection("codegen.emit:corrupt:2") == (
            "codegen.emit", "corrupt", 2,
        )

    def test_parse_injection_rejects_unknown_site(self):
        with pytest.raises(KeyError):
            parse_injection("warpcore.breach")

    def test_parse_injection_rejects_unsupported_mode(self):
        with pytest.raises(ValueError):
            parse_injection("supernode.build-chain:corrupt")

    def test_arm_rejects_unsupported_mode(self):
        with pytest.raises(ValueError):
            FAULTS.arm("codegen.emit", "stall")

    def test_fire_is_noop_when_disarmed(self):
        FAULTS.fire("codegen.emit")  # must not raise

    def test_skip_lets_early_hits_pass(self):
        plan = FAULTS.arm("codegen.emit", "raise", skip=1)
        FAULTS.fire("codegen.emit")  # hit 1: skipped
        with pytest.raises(FaultError):
            FAULTS.fire("codegen.emit")  # hit 2: fires
        assert (plan.hits, plan.fired) == (2, 1)

    def test_once_fires_exactly_once(self):
        plan = FAULTS.arm("codegen.emit", "raise", once=True)
        with pytest.raises(FaultError):
            FAULTS.fire("codegen.emit")
        FAULTS.fire("codegen.emit")  # second hit passes
        assert (plan.hits, plan.fired) == (2, 1)

    def test_every_site_declares_supported_modes(self):
        for name, site in FAULT_SITES.items():
            assert site.modes, name
            assert site_named(name) is site


class TestInterpreterWatchdog:
    def test_max_steps_raises_typed_error(self):
        module = fig3_module()
        interp = Interpreter(module, max_steps=5)
        with pytest.raises(BudgetExceededError) as excinfo:
            interp.run("fig3", (64,))
        assert isinstance(excinfo.value, InterpreterError)
        assert "budget" in str(excinfo.value)

    def test_simulate_forwards_max_steps(self):
        module = fig3_module()
        compiled = compile_module(module, SNSLP, DEFAULT_TARGET)
        with pytest.raises(BudgetExceededError):
            simulate(
                compiled.module, "fig3", DEFAULT_TARGET, [64], max_steps=3
            )

    def test_generous_budget_does_not_trip(self):
        module = fig3_module()
        interp = Interpreter(module, max_steps=100_000)
        interp.run("fig3", (8,))


class TestStatsResetOnException:
    """Satellite 1: a crashing compile must not poison later counters."""

    def test_counters_reset_when_compile_raises(self):
        module = fig3_module()
        before = STATS.snapshot()
        FAULTS.arm("codegen.emit", "raise")
        with pytest.raises(FaultError):
            compile_module(module, SNSLP, DEFAULT_TARGET)
        # the crashing compile's ephemeral session is discarded with its
        # partial counters; the ambient registry is untouched
        assert STATS.snapshot() == before, "stale counters survived the crash"

    def test_clean_compile_after_crash_reports_fresh_counters(self):
        module = fig3_module()
        FAULTS.arm("codegen.emit", "raise")
        with pytest.raises(FaultError):
            compile_module(module, SNSLP, DEFAULT_TARGET)
        FAULTS.disarm_all()
        result = compile_module(fig3_module(), SNSLP, DEFAULT_TARGET)
        assert result.counters  # the clean compile's own counters


class TestGuardedRecovery:
    """The headline parametrized property over every (site, mode)."""

    @pytest.mark.parametrize("site,mode", COMPILE_COMBOS)
    def test_injected_fault_cannot_escape(self, site, mode):
        module = fig3_module()
        inputs, reference = scalar_reference(module)
        plan = FAULTS.arm(site, mode)
        REMARKS.clear()
        REMARKS.enable()
        outcome = guarded_compile(
            module, SNSLP, DEFAULT_TARGET, phase_budget_seconds=0.1
        )
        FAULTS.disarm_all()

        # fig3 exercises the full SN-SLP pipeline, so every site is hit
        assert plan.fired > 0, f"{site}:{mode} never reached"
        assert outcome.recoveries, "fault fired but no recovery was recorded"
        # each rollback emitted a structured recovery remark ...
        recovery_remarks = REMARKS.of_kind("recovery")
        assert len(recovery_remarks) == len(outcome.recoveries)
        assert all(r.pass_name == "guard" for r in recovery_remarks)
        # ... and bumped the guarded compile's own counters
        counters = outcome.result.counters
        assert counters.get("robust.recoveries", 0) == len(outcome.recoveries)
        # the driver still produced runnable, semantics-preserving IR
        assert_matches_reference(
            outcome.result.module, module, inputs, reference
        )

    def test_clean_compile_has_no_recoveries(self):
        module = fig3_module()
        inputs, reference = scalar_reference(module)
        outcome = guarded_compile(module, SNSLP, DEFAULT_TARGET)
        assert not outcome.recovered
        assert not outcome.degraded
        assert outcome.config_used == "SN-SLP"
        assert len(outcome.result.report.vectorized_graphs()) == 1
        assert_matches_reference(
            outcome.result.module, module, inputs, reference
        )


class TestDegradationLadder:
    def test_resolve_ladder_starts_at_requested(self):
        names = [c.name for c in resolve_ladder(SNSLP)]
        assert names == ["SN-SLP", "LSLP", "SLP", "O3"]
        names = [c.name for c in resolve_ladder(config_named("lslp"))]
        assert names == ["LSLP", "SLP", "O3"]

    def test_resolve_ladder_prepends_foreign_config(self):
        names = [c.name for c in resolve_ladder(SNSLP, ladder=["SLP", "O3"])]
        assert names == ["SN-SLP", "SLP", "O3"]

    def test_vectorize_crash_descends_ladder(self):
        module = fig3_module()
        inputs, reference = scalar_reference(module)
        FAULTS.arm("codegen.emit", "raise")
        outcome = guarded_compile(module, SNSLP, DEFAULT_TARGET)
        FAULTS.disarm_all()
        assert outcome.degraded
        assert outcome.config_used != "SN-SLP"
        assert any(r.action == "descend-ladder" for r in outcome.recoveries)
        assert_matches_reference(
            outcome.result.module, module, inputs, reference
        )

    def test_corruption_is_caught_by_verify_gate(self):
        module = fig3_module()
        inputs, reference = scalar_reference(module)
        FAULTS.arm("codegen.emit", "corrupt")
        outcome = guarded_compile(module, SNSLP, DEFAULT_TARGET)
        FAULTS.disarm_all()
        assert any(r.kind == "verifier" for r in outcome.recoveries)
        assert outcome.crash is not None
        assert outcome.crash.kind == "verifier"
        assert_matches_reference(
            outcome.result.module, module, inputs, reference
        )

    def test_single_rung_ladder_falls_back_to_pristine(self):
        module = fig3_module()
        inputs, reference = scalar_reference(module)
        FAULTS.arm("codegen.emit", "raise")
        outcome = guarded_compile(
            module, SNSLP, DEFAULT_TARGET, ladder=["SN-SLP"]
        )
        FAULTS.disarm_all()
        assert outcome.config_used == "pristine"
        assert any(
            r.action == "pristine-fallback" for r in outcome.recoveries
        )
        assert outcome.result.counters.get("robust.pristine-fallbacks") == 1
        assert_matches_reference(
            outcome.result.module, module, inputs, reference
        )


class TestPhaseBudget:
    def test_stalled_phase_is_skipped_within_budget(self):
        module = fig3_module()
        inputs, reference = scalar_reference(module)
        FAULTS.arm("simplify.module", "stall")  # sleeps 0.25s per fire
        outcome = guarded_compile(
            module, SNSLP, DEFAULT_TARGET, phase_budget_seconds=0.05
        )
        FAULTS.disarm_all()
        budget_recoveries = [r for r in outcome.recoveries if r.kind == "budget"]
        assert budget_recoveries
        assert all(r.phase == "simplify" for r in budget_recoveries)
        assert all(r.action == "skip-phase" for r in budget_recoveries)
        # a skipped simplify must not stop vectorization, only slow it
        assert outcome.config_used == "SN-SLP"
        assert_matches_reference(
            outcome.result.module, module, inputs, reference
        )

    def test_budget_blowout_is_not_a_crash_capture(self):
        module = fig3_module()
        FAULTS.arm("simplify.module", "stall")
        outcome = guarded_compile(
            module, SNSLP, DEFAULT_TARGET, phase_budget_seconds=0.05
        )
        FAULTS.disarm_all()
        assert outcome.crash is None  # timing failures are not bundled


class TestCrashBundle:
    def test_injected_crash_produces_reduced_bundle(self, tmp_path):
        module = fig3_module()
        FAULTS.arm("codegen.emit", "raise")
        outcome = guarded_compile(
            module, SNSLP, DEFAULT_TARGET, bundle_dir=str(tmp_path)
        )
        assert outcome.bundle_dir is not None
        assert os.path.basename(outcome.bundle_dir) == "failure-0000"
        for artifact in (
            "original.ir", "snapshot.ir", "reduced.ir",
            "report.json", "remarks.jsonl",
        ):
            path = os.path.join(outcome.bundle_dir, artifact)
            assert os.path.exists(path), artifact

        with open(os.path.join(outcome.bundle_dir, "report.json")) as handle:
            report = json.load(handle)
        assert report["crash"]["kind"] == "exception"
        assert report["crash"]["phase"] == "vectorize"
        assert "repro bisect" in report["replay"]
        assert report["reduction"]["instructions_after"] <= (
            report["reduction"]["instructions_before"]
        )
        with open(os.path.join(outcome.bundle_dir, "remarks.jsonl")) as handle:
            assert '"recovery"' in handle.read()

    def test_bundle_replays_through_repro_bisect(self, tmp_path, capsys):
        module = fig3_module()
        FAULTS.arm("codegen.emit", "raise")
        outcome = guarded_compile(
            module, SNSLP, DEFAULT_TARGET, bundle_dir=str(tmp_path)
        )
        reduced = os.path.join(outcome.bundle_dir, "reduced.ir")
        # the fault is still armed, exactly like replaying a real compiler
        # bug whose trigger still exists in the build
        assert main(["bisect", reduced, "--config", "SN-SLP"]) == 0
        out = capsys.readouterr().out
        assert "first faulty decision" in out
        assert "crash" in out


class TestBisect:
    def test_localizes_crashing_decision(self):
        module = fig3_module()
        FAULTS.arm("codegen.emit", "raise")
        result = run_bisect(module, SNSLP, DEFAULT_TARGET, args=(64,))
        assert result.status == "crash"
        assert result.first_bad == 1
        assert "store-graph" in result.culprit
        assert not result.bad_at_zero

    def test_pre_vectorizer_fault_reports_bad_at_zero(self):
        module = fig3_module()
        FAULTS.arm("simplify.module", "raise")
        result = run_bisect(module, SNSLP, DEFAULT_TARGET, args=(64,))
        assert result.bad_at_zero
        assert result.first_bad is None

    def test_clean_module_reports_ok(self):
        module = fig3_module()
        result = run_bisect(module, SNSLP, DEFAULT_TARGET, args=(64,))
        assert result.status == "ok"
        assert result.total_decisions >= 1
        assert result.first_bad is None


class TestFuzzIntegration:
    def test_oracle_classifies_reference_budget_blowout(self):
        from repro.fuzz import generate_program, random_spec, run_oracle

        program = generate_program(random_spec(3))
        FAULTS.arm("interp.step", "stall")  # burns the reference's budget
        report = run_oracle(program)
        FAULTS.disarm_all()
        assert report.reference_trapped
        assert report.outcomes[0].status == "budget"

    def test_injection_campaign_covers_every_combo_cleanly(self):
        from repro.fuzz import injection_combos, run_injection_campaign

        combos = injection_combos()
        assert sorted(combos) == sorted(COMPILE_COMBOS)
        result = run_injection_campaign(budget=str(len(combos)), seed=0)
        assert result.ok, result.summary()
        assert result.stats.get("fuzz.injections") == len(combos)
        assert not result.escapes
