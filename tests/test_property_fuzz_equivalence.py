"""Property test: scalar vs SN-SLP interpreter equivalence at scale.

Runs 200 seeded ``kernels.generator`` programs (the satellite of the
fuzzing subsystem): each spec's module is interpreted unoptimized (the
reference semantics) and again after SN-SLP compilation, and every
output element must agree within the oracle's ULP budget.  The sweep is
seed-derived, so the 200 programs are identical on every run.
"""

import pytest

from repro.fuzz.oracle import values_close
from repro.interp import Interpreter
from repro.ir import verify_module
from repro.kernels.generator import GeneratorSpec, generate_inputs, generate_kernel
from repro.kernels.seeding import derive_seed
from repro.machine import DEFAULT_TARGET
from repro.vectorizer import SNSLP_CONFIG, compile_module

N = 64


def _sweep_specs(count: int = 200):
    """``count`` deterministic specs spanning lane/term/sign space."""
    specs = []
    for index in range(count):
        seed = derive_seed(0, f"equivalence/{index}")
        pick = seed & 0xFFFF
        lanes = (2, 2, 4)[pick % 3]
        terms = 2 + (pick >> 2) % 5
        minus = (pick >> 5) % terms
        if minus >= terms:
            minus = terms - 1
        specs.append(
            GeneratorSpec(
                seed=seed,
                lanes=lanes,
                terms=terms,
                minus_terms=minus,
                shuffle_lanes=bool(pick & 1),
            )
        )
    return specs


def _interpret(module, inputs):
    interp = Interpreter(module)
    for name, values in inputs.items():
        interp.write_global(name, values)
    interp.run("kernel", [N])
    return interp.read_global("OUT")


@pytest.mark.parametrize(
    "spec", _sweep_specs(), ids=lambda s: f"l{s.lanes}t{s.terms}m{s.minus_terms}s{s.seed & 0xFFFF}"
)
def test_scalar_vs_snslp_equivalent(spec):
    module = generate_kernel(spec)
    inputs = generate_inputs(spec)
    reference = _interpret(module, inputs)

    compiled = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
    verify_module(compiled.module)
    vectorized = _interpret(compiled.module, inputs)

    for index, (want, got) in enumerate(zip(reference, vectorized)):
        assert values_close(got, want, is_float=True), (
            f"OUT[{index}]: reference {want!r} vs SN-SLP {got!r} ({spec})"
        )
