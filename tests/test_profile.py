"""Profile tests: span-tree reconstruction, self-time attribution,
collapsed-stack (folded) export, and the ``repro profile`` CLI."""

import re

from repro.cli import main
from repro.kernels import kernel_named
from repro.observe.profile import (
    build_trees,
    folded_stacks,
    render_top_table,
    self_time_stats,
)
from repro.observe.session import CompilerSession, use_session
from repro.observe.trace import TraceEvent
from repro.vectorizer import SNSLP_CONFIG, compile_module


def _event(name, start, duration, depth, pid=0):
    return TraceEvent(
        name=name, start_ns=start, duration_ns=duration, depth=depth, pid=pid
    )


# a root covering two children; completion order (children first) as the
# tracer records them
SIMPLE = [
    _event("clone", 100, 200, 1),
    _event("vectorize", 400, 500, 1),
    _event("compile", 0, 1000, 0),
]


class TestBuildTrees:
    def test_children_attach_under_root(self):
        (root,) = build_trees(SIMPLE)
        assert root.event.name == "compile"
        assert [child.event.name for child in root.children] == [
            "clone", "vectorize",
        ]

    def test_self_time_subtracts_children(self):
        (root,) = build_trees(SIMPLE)
        assert root.self_ns == 1000 - 200 - 500

    def test_self_time_clamped_at_zero(self):
        # overlapping child clock reads can over-cover the parent; the
        # clamp keeps self time at zero instead of going negative
        events = [
            _event("child1", 0, 600, 1),
            _event("child2", 300, 700, 1),
            _event("parent", 0, 1000, 0),
        ]
        (root,) = build_trees(events)
        assert root.event.name == "parent"
        assert len(root.children) == 2
        assert root.self_ns == 0

    def test_zero_duration_equal_intervals_nest_by_depth(self):
        events = [
            _event("inner", 500, 0, 1),
            _event("outer", 500, 0, 0),
        ]
        (root,) = build_trees(events)
        assert root.event.name == "outer"
        assert root.children[0].event.name == "inner"

    def test_workers_form_separate_forests(self):
        events = SIMPLE + [_event("compile", 0, 1000, 0, pid=77)]
        roots = build_trees(events)
        assert len(roots) == 2
        assert sorted(root.event.pid for root in roots) == [0, 77]


class TestSelfTimeStats:
    def test_aggregates_and_orders_by_self_time(self):
        stats = self_time_stats(SIMPLE)
        assert [entry.name for entry in stats] == [
            "vectorize", "compile", "clone",
        ]
        by_name = {entry.name: entry for entry in stats}
        assert by_name["compile"].cumulative_ns == 1000
        assert by_name["compile"].self_ns == 300
        assert by_name["vectorize"].self_ns == 500

    def test_repeated_spans_accumulate(self):
        events = SIMPLE + SIMPLE
        by_name = {entry.name: entry for entry in self_time_stats(events)}
        assert by_name["clone"].count == 2
        assert by_name["clone"].self_ns == 400

    def test_top_table_renders(self):
        table = render_top_table(self_time_stats(SIMPLE), limit=2)
        assert "self ms" in table and "phase" in table
        assert "vectorize" in table
        assert "clone" not in table  # beyond the limit


class TestFoldedStacks:
    def test_stack_paths_and_microsecond_weights(self):
        folded = folded_stacks(SIMPLE)
        lines = folded.strip().splitlines()
        assert "compile;clone 1" in lines  # 200ns self → min weight 1
        assert "compile;vectorize 1" in lines
        assert all(re.fullmatch(r"[^ ]+ \d+", line) for line in lines)

    def test_zero_self_time_frames_are_omitted(self):
        events = [
            _event("child", 0, 1000, 1),
            _event("parent", 0, 1000, 0),  # zero self time
        ]
        folded = folded_stacks(events)
        assert "parent;child 1" in folded
        assert "\nparent " not in folded and not folded.startswith("parent ")

    def test_worker_roots_get_pid_prefix(self):
        events = [_event("compile", 0, 5000, 0, pid=42)]
        assert folded_stacks(events) == "pid42;compile 5\n"

    def test_real_compile_produces_parseable_folded_output(self):
        session = CompilerSession(name="profile-test")
        session.tracer.enable()
        with use_session(session):
            compile_module(kernel_named("motiv-leaf-reorder").build(), SNSLP_CONFIG)
        folded = folded_stacks(session.tracer.events)
        lines = folded.strip().splitlines()
        assert lines
        for line in lines:
            assert re.fullmatch(r"\S+(;\S+)* \d+", line), line
        assert any(line.startswith("compile;") for line in lines)


class TestProfileCLI:
    def test_profile_kernel_writes_folded_and_table(self, tmp_path, capsys):
        folded_path = tmp_path / "profile.folded"
        assert main(
            ["profile", "motiv-leaf-reorder", "--folded", str(folded_path)]
        ) == 0
        out = capsys.readouterr()
        assert "self ms" in out.out
        assert "compile" in out.out
        text = folded_path.read_text()
        for line in text.strip().splitlines():
            assert re.fullmatch(r"\S+(;\S+)* \d+", line), line
        assert "simulate" in text

    def test_profile_unknown_kernel_is_usage_error(self, capsys):
        assert main(["profile", "no-such-kernel"]) == 2
        assert "no such file" in capsys.readouterr().err
