"""Target machine, cost model and cycle simulator tests."""

import pytest

from repro.ir import F32, F64, I8, I64, Opcode, vector_of
from repro.machine import (
    ALL_TARGETS,
    DEFAULT_TARGET,
    NO_ADDSUB,
    SCALAR,
    SKYLAKE_LIKE,
    SSE4_LIKE,
    CostModel,
    VectorISA,
    target_named,
)
from repro.sim import RunStats, SimulationResult, measure, mean, simulate, stddev, summarize
from conftest import build_simple_store_module


class TestISA:
    def test_max_lanes(self):
        assert SKYLAKE_LIKE.isa.max_lanes(F64) == 4
        assert SKYLAKE_LIKE.isa.max_lanes(F32) == 8
        assert SKYLAKE_LIKE.isa.max_lanes(I64) == 4
        assert SSE4_LIKE.isa.max_lanes(F64) == 2
        assert SCALAR.isa.max_lanes(F64) == 0

    def test_legal_lane_counts_descending(self):
        assert SKYLAKE_LIKE.isa.legal_lane_counts(F64) == [4, 2]
        assert SSE4_LIKE.isa.legal_lane_counts(F64) == [2]
        assert SCALAR.isa.legal_lane_counts(F64) == []

    def test_unsupported_element(self):
        isa = VectorISA("narrow", 128, int_element_bits=frozenset({32}))
        assert not isa.supports_element(I64)
        assert isa.max_lanes(I64) == 0

    def test_target_lookup(self):
        assert target_named("skylake-like") is SKYLAKE_LIKE
        with pytest.raises(KeyError):
            target_named("itanium")


class TestCostModel:
    def test_vectorization_saves(self):
        model = DEFAULT_TARGET.cost_model
        vt = vector_of(F64, 4)
        scalar4 = model.scalarized_cost(Opcode.FADD, F64, 4)
        assert model.vector_op_cost(Opcode.FADD, vt) < scalar4

    def test_division_is_expensive(self):
        model = DEFAULT_TARGET.cost_model
        assert model.scalar_op_cost(Opcode.FDIV, F64) > 5 * model.scalar_op_cost(
            Opcode.FADD, F64
        )

    def test_gather_scales_with_lanes(self):
        model = DEFAULT_TARGET.cost_model
        assert model.gather_cost(vector_of(F64, 4)) == 2 * model.gather_cost(
            vector_of(F64, 2)
        )

    def test_altbinop_uniform_lanes_has_no_penalty(self):
        model = DEFAULT_TARGET.cost_model
        vt = vector_of(F64, 2)
        uniform = model.altbinop_cost((Opcode.FADD, Opcode.FADD), vt)
        assert uniform == model.vector_op_cost(Opcode.FADD, vt)

    def test_native_addsub_free_for_float(self):
        vt = vector_of(F64, 2)
        with_addsub = SKYLAKE_LIKE.cost_model.altbinop_cost(
            (Opcode.FADD, Opcode.FSUB), vt
        )
        without = NO_ADDSUB.cost_model.altbinop_cost((Opcode.FADD, Opcode.FSUB), vt)
        assert with_addsub < without

    def test_integer_alternation_always_pays(self):
        # x86 has no integer addsub; the paper's Fig 3c charges +2.
        vt = vector_of(I64, 2)
        model = SKYLAKE_LIKE.cost_model
        mixed = model.altbinop_cost((Opcode.ADD, Opcode.SUB), vt)
        uniform = model.altbinop_cost((Opcode.ADD, Opcode.ADD), vt)
        assert mixed == uniform + model.alternate_penalty

    def test_paper_unit_costs(self):
        # These exact relations make the motivating examples' cost
        # arithmetic land on the paper's numbers (0, +4, -6).
        model = DEFAULT_TARGET.cost_model
        vt = vector_of(I64, 2)
        assert model.vector_op_cost(Opcode.ADD, vt) - model.scalarized_cost(
            Opcode.ADD, I64, 2
        ) == -1.0
        assert model.gather_cost(vt) == 2.0
        assert model.altbinop_cost((Opcode.ADD, Opcode.SUB), vt) - 2.0 == 1.0


class TestSimulator:
    def test_cycles_accumulate(self):
        module = build_simple_store_module(num_lanes=2)
        result = simulate(module, "kernel", DEFAULT_TARGET, [0])
        assert result.cycles > 0
        assert result.instructions == len(list(module.function("kernel").entry))

    def test_globals_captured(self):
        module = build_simple_store_module(num_lanes=2)
        result = simulate(
            module, "kernel", DEFAULT_TARGET, [0],
            inputs={"B": [2.0] * 64, "C": [3.0] * 64},
        )
        assert result.globals_after["A"][0] == 5.0

    def test_per_opcode_breakdown(self):
        module = build_simple_store_module(num_lanes=2)
        result = simulate(module, "kernel", DEFAULT_TARGET, [0])
        assert Opcode.STORE in result.per_opcode
        assert Opcode.FADD in result.per_opcode

    def test_speedup_over(self):
        module = build_simple_store_module(num_lanes=2)
        fast = simulate(module, "kernel", DEFAULT_TARGET, [0])
        slow = SimulationResult(
            cycles=fast.cycles * 2,
            instructions=0,
            per_opcode={},
            return_value=None,
        )
        assert fast.speedup_over(slow) == 2.0

    def test_deterministic(self):
        module = build_simple_store_module(num_lanes=2)
        a = simulate(module, "kernel", DEFAULT_TARGET, [0])
        b = simulate(module, "kernel", DEFAULT_TARGET, [0])
        assert a.cycles == b.cycles


class TestStats:
    def test_mean_stddev(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert stddev([2.0, 2.0, 2.0]) == 0.0
        assert stddev([1.0, 3.0]) == pytest.approx(2.0 ** 0.5)

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.count == 3

    def test_measure_protocol(self):
        calls = []

        def fn():
            calls.append(None)
            return float(len(calls))

        stats = measure(fn, runs=10, warmup=1)
        # 1 warm-up + 10 measured; warm-up result discarded
        assert len(calls) == 11
        assert stats.count == 10
        assert stats.samples[0] == 2.0

    def test_normalized_to(self):
        fast = summarize([1.0, 1.0])
        slow = summarize([2.0, 2.0])
        assert fast.normalized_to(slow) == 2.0
