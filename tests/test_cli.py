"""CLI driver tests (``python -m repro`` / the ``snslp`` entry point)."""

import pytest

from repro.cli import main

FIG3 = """
long A[1024]; long B[1024]; long C[1024]; long D[1024];

kernel fig3(n) {
  for (i = 0; i < n; i += 2) {
    A[i+0] = B[i+0] - C[i+0] + D[i+0];
    A[i+1] = B[i+1] + D[i+1] - C[i+1];
  }
}
"""

TWO_KERNELS = """
double A[16];
kernel one(n) { A[0] = 1.0; }
kernel two(n) { A[1] = 2.0; }
"""


@pytest.fixture
def fig3_file(tmp_path):
    path = tmp_path / "fig3.sn"
    path.write_text(FIG3)
    return str(path)


class TestCompile:
    def test_emit_ir(self, fig3_file, capsys):
        assert main(["compile", fig3_file, "--emit-ir"]) == 0
        out = capsys.readouterr()
        assert "func @fig3" in out.out
        assert "<2 x i64>" in out.out  # vectorized under the default SN-SLP
        assert "vectorized" in out.err

    def test_o3_leaves_scalar(self, fig3_file, capsys):
        assert main(["compile", fig3_file, "--emit-ir", "--config", "o3"]) == 0
        out = capsys.readouterr()
        assert "<2 x i64>" not in out.out

    def test_without_emit_only_stats(self, fig3_file, capsys):
        assert main(["compile", fig3_file]) == 0
        out = capsys.readouterr()
        assert out.out == ""
        assert "SLP graphs" in out.err

    def test_unknown_config_is_usage_error(self, fig3_file, capsys):
        assert main(["compile", fig3_file, "--config", "turbo"]) == 2
        assert "unknown vectorizer config" in capsys.readouterr().err

    def test_unknown_target_is_usage_error(self, fig3_file, capsys):
        assert main(["compile", fig3_file, "--target", "itanium"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["compile", str(tmp_path / "nope.sn")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_guarded_compile_clean(self, fig3_file, capsys):
        assert main(["compile", fig3_file, "--guard", "--emit-ir"]) == 0
        out = capsys.readouterr()
        assert "guarded compile: requested SN-SLP, used SN-SLP" in out.err
        assert "<2 x i64>" in out.out  # still vectorized on the clean path

    def test_guarded_compile_bad_ladder_is_usage_error(self, fig3_file, capsys):
        code = main(["compile", fig3_file, "--guard", "--ladder", "SN-SLP,warp9"])
        assert code == 2
        assert "unknown vectorizer config" in capsys.readouterr().err


class TestRun:
    def test_run_prints_buffers(self, fig3_file, capsys):
        assert main(["run", fig3_file, "--n", "8", "--show", "4"]) == 0
        out = capsys.readouterr().out
        assert "cycles:" in out
        assert "@A[:4]" in out

    def test_kernel_selection_required_when_ambiguous(self, tmp_path, capsys):
        path = tmp_path / "two.sn"
        path.write_text(TWO_KERNELS)
        assert main(["run", str(path)]) == 2
        assert "pick one with --kernel" in capsys.readouterr().err
        assert main(["run", str(path), "--kernel", "one"]) == 0

    def test_unknown_kernel_is_usage_error(self, fig3_file, capsys):
        assert main(["run", fig3_file, "--kernel", "nope"]) == 2

    def test_max_steps_watchdog_exit_code(self, fig3_file, capsys):
        assert main(["run", fig3_file, "--n", "64", "--max-steps", "10"]) == 5
        assert "execution budget exceeded" in capsys.readouterr().err

    def test_seed_determinism(self, fig3_file, capsys):
        main(["run", fig3_file, "--seed", "7"])
        first = capsys.readouterr().out
        main(["run", fig3_file, "--seed", "7"])
        second = capsys.readouterr().out
        assert first == second


class TestCompare:
    def test_compare_all_configs(self, fig3_file, capsys):
        assert main(["compare", fig3_file, "--n", "128"]) == 0
        out = capsys.readouterr().out
        for name in ("O3", "SLP", "LSLP", "SN-SLP"):
            assert name in out
        # SN-SLP must show a speedup and correctness
        snslp_line = next(l for l in out.splitlines() if l.startswith("SN-SLP"))
        assert "True" in snslp_line


class TestReport:
    def test_report_shows_graphs_and_nodes(self, fig3_file, capsys):
        assert main(["report", fig3_file, "--config", "sn-slp"]) == 0
        out = capsys.readouterr().out
        assert "graphs vectorized: 1" in out
        assert "super-node" in out

    def test_report_lslp_shows_unprofitable(self, fig3_file, capsys):
        assert main(["report", fig3_file, "--config", "lslp"]) == 0
        out = capsys.readouterr().out
        assert "not profitable" in out


class TestUnrollFlag:
    def test_unroll_enables_vectorization_from_cli(self, tmp_path, capsys):
        path = tmp_path / "step1.sn"
        path.write_text(
            "long A[256]; long B[256]; long C[256]; long D[256];\n"
            "kernel k(n) {\n"
            "  for (i = 0; i < n; i += 1) { A[i] = B[i] - C[i] + D[i]; }\n"
            "}\n"
        )
        assert main(["compare", str(path), "--n", "100"]) == 0
        plain = capsys.readouterr().out
        assert main(["compare", str(path), "--n", "100", "--unroll", "4"]) == 0
        unrolled = capsys.readouterr().out
        plain_snslp = next(l for l in plain.splitlines() if l.startswith("SN-SLP"))
        unrolled_snslp = next(
            l for l in unrolled.splitlines() if l.startswith("SN-SLP")
        )
        assert " 0 " in plain_snslp.replace("    ", " ")
        assert "True" in unrolled_snslp


class TestTextualIRInput:
    def test_ir_file_loads_and_runs(self, tmp_path, capsys):
        # emit vectorized IR from source, then feed the .ir back in
        src = tmp_path / "k.sn"
        src.write_text(FIG3)
        assert main(["compile", str(src), "--emit-ir"]) == 0
        text = capsys.readouterr().out
        ir_file = tmp_path / "k.ir"
        ir_file.write_text(text)
        assert main(["run", str(ir_file), "--n", "8", "--show", "2"]) == 0
        out = capsys.readouterr().out
        assert "cycles:" in out

    def test_malformed_ir_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.ir"
        bad.write_text("module m\nfunc @f() -> void {\nentry:\n  bogus\n}\n")
        assert main(["compile", str(bad)]) == 2
        assert capsys.readouterr().err  # the parse diagnostic surfaced


class TestBisectCommand:
    def test_bisect_clean_module(self, fig3_file, capsys):
        assert main(["bisect", fig3_file, "--n", "64", "--decisions"]) == 0
        out = capsys.readouterr().out
        assert "gated decision(s)" in out
        assert "did not reproduce" in out
        assert "slp store-graph" in out


class TestInjectionSmoke:
    def test_inject_campaign_via_cli(self, capsys):
        assert main(["fuzz", "--inject", "--budget", "8", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "injection campaign" in out
        assert "0 escape(s)" in out
