"""SLP graph construction, cost evaluation and vector codegen tests."""

import pytest

from repro.interp import Interpreter
from repro.ir import (
    F64,
    I64,
    VOID,
    Constant,
    Function,
    IRBuilder,
    Module,
    Opcode,
    eliminate_dead_code,
    verify_module,
    vector_of,
)
from repro.machine import DEFAULT_TARGET
from repro.vectorizer import (
    NodeKind,
    SLPVectorizer,
    SLP_CONFIG,
    SNSLP_CONFIG,
    collect_store_seeds,
    compute_graph_cost,
    emit_vector_code,
    is_profitable,
)
from repro.vectorizer.slp import _GraphBuilder
from conftest import build_simple_store_module


def _build_graph(module, config=SLP_CONFIG, function_name="kernel"):
    function = module.function(function_name)
    vectorizer = SLPVectorizer(DEFAULT_TARGET, config)
    seeds = collect_store_seeds(function.entry, DEFAULT_TARGET.isa)
    assert seeds, "test module must contain a seed bundle"
    builder = _GraphBuilder(vectorizer, seeds[0], function)
    graph = builder.build()
    assert graph is not None
    return graph, function


class TestGraphShape:
    def test_simple_module_fully_vectorizable(self):
        graph, _ = _build_graph(build_simple_store_module(2))
        kinds = sorted(n.kind.value for n in graph.nodes)
        assert kinds == ["load", "load", "store", "vector"]
        assert graph.gather_nodes() == []

    def test_root_is_store(self):
        graph, _ = _build_graph(build_simple_store_module(2))
        assert graph.root.kind is NodeKind.STORE
        assert graph.root.vec_type is vector_of(F64, 2)

    def test_anchor_is_last_store(self):
        graph, function = _build_graph(build_simple_store_module(2))
        assert graph.anchor.opcode is Opcode.STORE
        stores = [i for i in function.entry if i.opcode is Opcode.STORE]
        assert graph.anchor is stores[-1]

    def test_dump_is_readable(self):
        graph, _ = _build_graph(build_simple_store_module(2))
        text = graph.dump()
        assert "store" in text and "load" in text

    def test_alt_node_for_mixed_family(self):
        module = Module("alt")
        for name in "ABC":
            module.add_global(name, F64, 64)
        function = Function("kernel", [("i", I64)], VOID, fast_math=True)
        module.add_function(function)
        b = IRBuilder(function.add_block("entry"))
        i = function.arguments[0]
        # lane0: B+C  lane1: B-C  (isomorphic operands, alternating opcode)
        for lane, op in enumerate(("fadd", "fsub")):
            idx = b.add(i, b.const_i64(lane)) if lane else i
            lhs = b.load(b.gep(module.global_named("B"), idx))
            rhs = b.load(b.gep(module.global_named("C"), idx))
            value = getattr(b, op)(lhs, rhs)
            b.store(value, b.gep(module.global_named("A"), idx))
        b.ret()
        verify_module(module)
        graph, _ = _build_graph(module)
        alt = [n for n in graph.nodes if n.kind is NodeKind.ALT]
        assert len(alt) == 1
        assert alt[0].lane_opcodes == (Opcode.FADD, Opcode.FSUB)

    def test_gather_for_mixed_opcode_families(self):
        module = Module("gather")
        for name in "ABC":
            module.add_global(name, F64, 64)
        function = Function("kernel", [("i", I64)], VOID, fast_math=True)
        module.add_function(function)
        b = IRBuilder(function.add_block("entry"))
        i = function.arguments[0]
        for lane, op in enumerate(("fadd", "fmul")):
            idx = b.add(i, b.const_i64(lane)) if lane else i
            lhs = b.load(b.gep(module.global_named("B"), idx))
            rhs = b.load(b.gep(module.global_named("C"), idx))
            b.store(getattr(b, op)(lhs, rhs), b.gep(module.global_named("A"), idx))
        b.ret()
        graph, _ = _build_graph(module)
        assert any(
            n.kind is NodeKind.GATHER and "famil" in n.reason for n in graph.nodes
        )


class TestCost:
    def test_fully_vectorizable_cost_negative(self):
        graph, _ = _build_graph(build_simple_store_module(2))
        total = compute_graph_cost(graph, DEFAULT_TARGET.cost_model)
        assert total < 0
        assert is_profitable(graph)

    def test_unit_costs_match_paper_arithmetic(self):
        # store -1, fadd -1, 2 loads -1 each => -4 at VF=2
        graph, _ = _build_graph(build_simple_store_module(2))
        total = compute_graph_cost(graph, DEFAULT_TARGET.cost_model)
        assert total == -4.0

    def test_wider_bundles_save_more(self):
        graph2, _ = _build_graph(build_simple_store_module(2))
        graph4, _ = _build_graph(build_simple_store_module(4))
        c2 = compute_graph_cost(graph2, DEFAULT_TARGET.cost_model)
        c4 = compute_graph_cost(graph4, DEFAULT_TARGET.cost_model)
        assert c4 < c2

    def test_external_use_charges_extract(self):
        module = build_simple_store_module(2)
        function = module.function("kernel")
        # add an external user of the first fadd (after the stores)
        fadds = [i for i in function.entry if i.opcode is Opcode.FADD]
        ret = function.entry.instructions[-1]
        b = IRBuilder()
        b.position_before(ret)
        extra = b.fmul(fadds[0], Constant(F64, 2.0))
        b.store(extra, b.gep(module.global_named("A"), 63))
        graph, _ = _build_graph(module)
        total = compute_graph_cost(graph, DEFAULT_TARGET.cost_model)
        assert total == -4.0 + DEFAULT_TARGET.cost_model.extract_cost


class TestCodegen:
    def _run(self, module, inputs, n=0):
        interp = Interpreter(module)
        for name, values in inputs.items():
            interp.write_global(name, values)
        interp.run("kernel", [n])
        return interp.read_global("A")

    def test_vector_code_replaces_scalars(self):
        module = build_simple_store_module(2)
        inputs = {"B": [float(k) for k in range(64)], "C": [1.0] * 64}
        expected = self._run(build_simple_store_module(2), inputs)
        graph, function = _build_graph(module)
        compute_graph_cost(graph, DEFAULT_TARGET.cost_model)
        emit_vector_code(graph)
        eliminate_dead_code(function)
        verify_module(module)
        opcodes = [inst.opcode for inst in function.entry]
        assert Opcode.STORE in opcodes
        # exactly one (vector) store remains
        assert opcodes.count(Opcode.STORE) == 1
        loads = [inst for inst in function.entry if inst.opcode is Opcode.LOAD]
        assert all(load.type.is_vector for load in loads)
        assert self._run(module, inputs) == expected

    def test_external_users_rewired_to_extract(self):
        module = build_simple_store_module(2)
        function = module.function("kernel")
        fadds = [i for i in function.entry if i.opcode is Opcode.FADD]
        ret = function.entry.instructions[-1]
        b = IRBuilder()
        b.position_before(ret)
        extra = b.fmul(fadds[0], Constant(F64, 2.0))
        b.store(extra, b.gep(module.global_named("A"), 63))
        inputs = {"B": [3.0] * 64, "C": [4.0] * 64}
        graph, _ = _build_graph(module)
        emit_vector_code(graph)
        eliminate_dead_code(function)
        verify_module(module)
        assert extra.lhs.opcode is Opcode.EXTRACTELEMENT
        out = self._run(module, inputs)
        assert out[63] == 14.0  # (3+4)*2

    def test_gather_node_emits_inserts(self):
        # non-adjacent loads must be gathered via insertelement chain
        module = Module("g")
        for name in "AB":
            module.add_global(name, F64, 64)
        function = Function("kernel", [("i", I64)], VOID)
        module.add_function(function)
        b = IRBuilder(function.add_block("entry"))
        i = function.arguments[0]
        l0 = b.load(b.gep(module.global_named("B"), 0))
        l5 = b.load(b.gep(module.global_named("B"), 5))
        for lane, val in enumerate((l0, l5)):
            idx = b.add(i, b.const_i64(lane)) if lane else i
            v = b.fadd(val, Constant(F64, 1.0))
            b.store(v, b.gep(module.global_named("A"), idx))
        b.ret()
        inputs = {"B": [float(k) for k in range(64)]}
        expected = [1.0, 6.0]
        graph, function = _build_graph(module)
        emit_vector_code(graph)
        eliminate_dead_code(function)
        verify_module(module)
        opcodes = [inst.opcode for inst in function.entry]
        assert Opcode.INSERTELEMENT in opcodes
        out = self._run(module, inputs)
        assert out[:2] == expected

    def test_constant_gather_becomes_vector_constant(self):
        module = Module("c")
        module.add_global("A", F64, 64)
        module.add_global("B", F64, 64)
        function = Function("kernel", [("i", I64)], VOID)
        module.add_function(function)
        b = IRBuilder(function.add_block("entry"))
        i = function.arguments[0]
        for lane, c in enumerate((2.0, 3.0)):
            idx = b.add(i, b.const_i64(lane)) if lane else i
            v = b.fadd(b.load(b.gep(module.global_named("B"), idx)), Constant(F64, c))
            b.store(v, b.gep(module.global_named("A"), idx))
        b.ret()
        graph, function = _build_graph(module)
        emit_vector_code(graph)
        eliminate_dead_code(function)
        opcodes = [inst.opcode for inst in function.entry]
        assert Opcode.INSERTELEMENT not in opcodes
        out = self._run(module, {"B": [1.0] * 64})
        assert out[:2] == [3.0, 4.0]

    def test_splat_gather_uses_shuffle(self):
        module = Module("s")
        module.add_global("A", F64, 64)
        module.add_global("B", F64, 64)
        function = Function("kernel", [("i", I64), ("x", F64)], VOID)
        module.add_function(function)
        b = IRBuilder(function.add_block("entry"))
        i, x = function.arguments
        for lane in range(2):
            idx = b.add(i, b.const_i64(lane)) if lane else i
            v = b.fadd(b.load(b.gep(module.global_named("B"), idx)), x)
            b.store(v, b.gep(module.global_named("A"), idx))
        b.ret()
        graph, function = _build_graph(module)
        emit_vector_code(graph)
        eliminate_dead_code(function)
        opcodes = [inst.opcode for inst in function.entry]
        assert Opcode.SHUFFLEVECTOR in opcodes
        interp = Interpreter(module)
        interp.write_global("B", [1.0] * 64)
        interp.run("kernel", [0, 41.0])
        assert interp.read_global("A")[:2] == [42.0, 42.0]


class TestReversedLoads:
    def _reversed_module(self):
        module = Module("rev")
        for name in "ABC":
            module.add_global(name, F64, 64)
        function = Function("kernel", [("i", I64)], VOID, fast_math=True)
        module.add_function(function)
        b = IRBuilder(function.add_block("entry"))
        i = function.arguments[0]
        idx = {k: (b.add(i, b.const_i64(k)) if k else i) for k in range(4)}
        for k in range(4):
            value = b.fadd(
                b.load(b.gep(module.global_named("B"), idx[3 - k])),
                b.load(b.gep(module.global_named("C"), idx[k])),
            )
            b.store(value, b.gep(module.global_named("A"), idx[k]))
        b.ret()
        verify_module(module)
        return module

    def test_reversed_bundle_detected_and_costed(self):
        from repro.vectorizer.legality import loads_are_reversed

        module = self._reversed_module()
        graph, _ = _build_graph(module)
        load_nodes = [n for n in graph.nodes if n.kind is NodeKind.LOAD]
        reversed_nodes = [n for n in load_nodes if n.load_reversed]
        assert len(reversed_nodes) == 1
        compute_graph_cost(graph, DEFAULT_TARGET.cost_model)
        straight = next(n for n in load_nodes if not n.load_reversed)
        # the reversed node pays exactly one shuffle more
        assert reversed_nodes[0].cost == straight.cost + (
            DEFAULT_TARGET.cost_model.shuffle_cost
        )

    def test_reversed_codegen_correct(self):
        import math
        import random

        module = self._reversed_module()
        inputs = {
            name: [random.Random(name).uniform(-5, 5) for _ in range(64)]
            for name in "BC"
        }
        expected = self._run_module(self._reversed_module(), inputs)
        graph, function = _build_graph(module)
        compute_graph_cost(graph, DEFAULT_TARGET.cost_model)
        emit_vector_code(graph)
        eliminate_dead_code(function)
        verify_module(module)
        opcodes = [inst.opcode for inst in function.entry]
        assert Opcode.SHUFFLEVECTOR in opcodes
        got = self._run_module(module, inputs)
        for x, y in zip(got, expected):
            assert math.isclose(x, y, rel_tol=1e-12)

    @staticmethod
    def _run_module(module, inputs):
        interp = Interpreter(module)
        for name, values in inputs.items():
            interp.write_global(name, values)
        interp.run("kernel", [0])
        return interp.read_global("A")


class TestCmpSelectBundles:
    def _clamp_module(self):
        from repro.ir import CmpPredicate

        module = Module("clamp")
        for name in "ABC":
            module.add_global(name, F64, 64)
        function = Function("kernel", [("i", I64)], VOID, fast_math=True)
        module.add_function(function)
        b = IRBuilder(function.add_block("entry"))
        i = function.arguments[0]
        for k in range(4):
            idx = b.add(i, b.const_i64(k)) if k else i
            x = b.load(b.gep(module.global_named("B"), idx))
            y = b.load(b.gep(module.global_named("C"), idx))
            cond = b.fcmp(CmpPredicate.LT, x, y)
            b.store(b.select(cond, x, y), b.gep(module.global_named("A"), idx))
        b.ret()
        verify_module(module)
        return module

    def test_cmp_and_select_vectorize(self):
        graph, _ = _build_graph(self._clamp_module())
        assert graph.gather_nodes() == []
        kinds = [n.kind for n in graph.nodes]
        assert kinds.count(NodeKind.VECTOR) == 2  # fcmp + select

    def test_shared_operand_bundles_deduplicated(self):
        # the select's value operands are the same loads the cmp compares:
        # they must reuse the SAME nodes, not gather
        graph, _ = _build_graph(self._clamp_module())
        load_nodes = [n for n in graph.nodes if n.kind is NodeKind.LOAD]
        assert len(load_nodes) == 2  # B-loads and C-loads, each built once

    def test_clamp_end_to_end(self):
        import random

        module = self._clamp_module()
        inputs = {
            name: [random.Random(name).uniform(-9, 9) for _ in range(64)]
            for name in "BC"
        }
        interp_expected = Interpreter(self._clamp_module())
        for name, values in inputs.items():
            interp_expected.write_global(name, values)
        interp_expected.run("kernel", [0])
        expected = interp_expected.read_global("A")

        graph, function = _build_graph(module)
        compute_graph_cost(graph, DEFAULT_TARGET.cost_model)
        assert is_profitable(graph)
        emit_vector_code(graph)
        eliminate_dead_code(function)
        verify_module(module)
        interp = Interpreter(module)
        for name, values in inputs.items():
            interp.write_global(name, values)
        interp.run("kernel", [0])
        assert interp.read_global("A") == expected
        # vector mask: the fcmp result must be an i1 vector
        from repro.ir import I1, vector_of as vec

        cmps = [inst for inst in function.entry if inst.opcode is Opcode.FCMP]
        assert len(cmps) == 1 and cmps[0].type is vec(I1, 4)
