"""Observability tests: tracer spans, statistic counters, remarks, and the
instrumentation contracts of the compilation pipeline."""

import json

import pytest

from repro.kernels import all_kernels, kernel_named
from repro.machine import DEFAULT_TARGET
from repro.observe import (
    REMARKS,
    STAT,
    STATS,
    TRACER,
    Remark,
    RemarkCollector,
    StatsRegistry,
    Tracer,
    load_remarks,
)
from repro.observe.trace import _NULL_SPAN
from repro.vectorizer import LSLP_CONFIG, SNSLP_CONFIG, compile_module
from repro.vectorizer.pipeline import PIPELINE_PHASES


@pytest.fixture
def tracer():
    t = Tracer(enabled=True)
    yield t


class TestTracer:
    def test_span_nesting_depths(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        # children complete (and append) before their parent
        names = [e.name for e in tracer.events]
        assert names == ["inner", "inner", "outer"]
        outer = tracer.named("outer")[0]
        assert outer.depth == 0
        assert all(e.depth == 1 for e in tracer.named("inner"))

    def test_children_nest_within_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.named("outer")[0]
        inner = tracer.named("inner")[0]
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert inner.duration_ns <= outer.duration_ns

    def test_total_ns_sums_same_named_spans(self, tracer):
        for _ in range(3):
            with tracer.span("work"):
                pass
        assert len(tracer.named("work")) == 3
        assert tracer.total_ns("work") == sum(
            e.duration_ns for e in tracer.named("work")
        )

    def test_disabled_tracer_records_nothing(self):
        t = Tracer()  # disabled by default
        with t.span("anything", detail=1):
            pass
        assert t.events == []
        # disabled spans are one shared no-op object: no per-call allocation
        assert t.span("a") is _NULL_SPAN
        assert t.span("a") is t.span("b")

    def test_span_args_recorded(self, tracer):
        with tracer.span("compile", config="SN-SLP"):
            pass
        assert tracer.events[0].args == {"config": "SN-SLP"}

    def test_chrome_trace_shape(self, tracer):
        with tracer.span("outer", config="SN-SLP"):
            with tracer.span("inner"):
                pass
        doc = tracer.to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(spans) == 2
        # one process_name metadata record labels the (pid, generation) track
        assert meta and all(m["name"] == "process_name" for m in meta)
        for event in spans:
            assert set(event) >= {"name", "ts", "dur", "pid", "tid"}
        by_name = {e["name"]: e for e in spans}
        assert by_name["outer"]["args"] == {"config": "SN-SLP"}

    def test_chrome_trace_file_roundtrip(self, tracer, tmp_path):
        with tracer.span("compile"):
            pass
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        spans = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
        assert spans[0]["name"] == "compile"

    def test_clear_resets_events_and_stack(self, tracer):
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.events == []


class TestTracerEdgeCases:
    def test_zero_duration_span_still_recorded_with_depth(self, tracer):
        with tracer.span("outer"):
            with tracer.span("instant"):
                pass  # may complete within one clock tick
        instant = tracer.named("instant")[0]
        assert instant.duration_ns >= 0
        assert instant.depth == 1

    def test_contains_is_inclusive_on_equal_intervals(self):
        from repro.observe.trace import TraceEvent

        a = TraceEvent(name="a", start_ns=100, duration_ns=50, depth=0)
        b = TraceEvent(name="b", start_ns=100, duration_ns=50, depth=1)
        # containment is symmetric for equal intervals — profile-tree
        # reconstruction must break the tie with the recorded depth
        assert a.contains(b) and b.contains(a)

    def test_contains_rejects_partial_overlap(self):
        from repro.observe.trace import TraceEvent

        a = TraceEvent(name="a", start_ns=0, duration_ns=100, depth=0)
        b = TraceEvent(name="b", start_ns=50, duration_ns=100, depth=1)
        assert not a.contains(b)
        assert not b.contains(a)

    def test_span_recorded_even_when_body_raises(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("failing"):
                    raise RuntimeError("boom")
        assert [e.name for e in tracer.events] == ["failing", "outer"]
        assert tracer._stack == []  # both spans unwound

    def test_depths_recover_after_exception(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("first"):
                raise ValueError
        with tracer.span("second"):
            pass
        assert tracer.named("second")[0].depth == 0

    def test_tracer_shared_across_derived_sessions(self):
        from repro.observe.session import CompilerSession, use_session
        from repro.observe.session import current_tracer

        parent = CompilerSession(name="parent")
        parent.tracer.enable()
        child = parent.derive(name="child")
        assert child.tracer is parent.tracer
        with use_session(child):
            with current_tracer().span("from-child"):
                pass
        assert [e.name for e in parent.tracer.events] == ["from-child"]

    def test_enable_mid_run_only_records_later_spans(self):
        t = Tracer()
        with t.span("before"):
            pass
        t.enable()
        with t.span("after"):
            pass
        assert [e.name for e in t.events] == ["after"]

    def test_disabled_tracer_span_is_shared_null(self):
        t = Tracer()
        assert t.span("a") is _NULL_SPAN
        assert t.span("b", arg=1) is _NULL_SPAN


class TestStats:
    def test_stat_returns_singleton_handle(self):
        registry = StatsRegistry()
        a = registry.stat("x.count", "first")
        b = registry.stat("x.count")
        assert a is b
        assert b.description == "first"

    def test_snapshot_only_nonzero(self):
        registry = StatsRegistry()
        registry.stat("a").add(2)
        registry.stat("b")  # stays zero
        registry.stat("c").add(0.5)
        assert registry.snapshot() == {"a": 2, "c": 0.5}

    def test_reset_zeros_in_place(self):
        registry = StatsRegistry()
        handle = registry.stat("a")
        handle.add(5)
        registry.reset()
        assert handle.value == 0
        assert registry.stat("a") is handle  # identity survives reset
        handle.add()
        assert registry.value("a") == 1

    def test_report_table(self):
        registry = StatsRegistry()
        registry.stat("slp.graphs", "graphs built").add(3)
        text = registry.report(title="T")
        assert text.splitlines()[0] == "===-- T --==="
        assert "3 slp.graphs - graphs built" in text

    def test_global_stat_shorthand(self):
        handle = STAT("test.observe.scratch")
        before = handle.value  # lazy proxy: reads the ambient registry
        handle.add()
        # materialized in the ambient (default) registry on first use
        assert "test.observe.scratch" in STATS
        assert STATS.value("test.observe.scratch") == before + 1
        STATS.reset()

    def test_counters_reset_between_compilations(self):
        kernel = kernel_named("motiv-trunk-reorder")
        first = compile_module(kernel.build(), SNSLP_CONFIG, DEFAULT_TARGET)
        second = compile_module(kernel.build(), SNSLP_CONFIG, DEFAULT_TARGET)
        # identical compilations must report identical counters: nothing
        # leaks across compile_module calls
        assert first.counters == second.counters
        assert first.counters["slp.graphs-vectorized"] == 1
        # an O3 compile after SN-SLP starts from zero as well
        from repro.vectorizer import O3_CONFIG

        o3 = compile_module(kernel.build(), O3_CONFIG, DEFAULT_TARGET)
        assert "slp.graphs-built" not in o3.counters


class TestRemarks:
    def test_disabled_collector_is_inert(self):
        collector = RemarkCollector()
        assert collector.emit("passed", "slp", "msg") is None
        assert collector.remarks == []

    def test_jsonl_roundtrip(self, tmp_path):
        collector = RemarkCollector(enabled=True)
        collector.passed("slp", "vectorized", function="f", block="b", seed="store", cost=-6.0)
        collector.missed("slp", "not profitable", function="f", gather_reasons={"x": 2})
        collector.analysis("supernode", "shape", lanes=2)
        path = tmp_path / "remarks.jsonl"
        collector.write_jsonl(str(path))
        loaded = load_remarks(str(path))
        assert [r.to_dict() for r in loaded] == [
            r.to_dict() for r in collector.remarks
        ]
        assert loaded[0].kind == "passed"
        assert loaded[0].args["cost"] == -6.0
        assert loaded[1].args["gather_reasons"] == {"x": 2}

    def test_of_kind_filter(self):
        collector = RemarkCollector(enabled=True)
        collector.passed("slp", "a")
        collector.missed("slp", "b")
        collector.missed("slp", "c")
        assert len(collector.of_kind("missed")) == 2
        assert len(collector.of_kind("passed")) == 1

    def test_compile_emits_passed_and_missed_on_motivating_kernels(self):
        REMARKS.clear()
        REMARKS.enable()
        try:
            kernel = kernel_named("motiv-leaf-reorder")
            compile_module(kernel.build(), SNSLP_CONFIG, DEFAULT_TARGET)
            compile_module(kernel.build(), LSLP_CONFIG, DEFAULT_TARGET)
        finally:
            REMARKS.disable()
        kinds = {r.kind for r in REMARKS.remarks}
        assert "passed" in kinds  # SN-SLP vectorizes Figure 2
        assert "missed" in kinds  # LSLP rejects it on cost
        missed = REMARKS.of_kind("missed")[0]
        assert missed.pass_name == "slp"
        assert missed.function
        REMARKS.clear()


class TestPipelinePhases:
    def test_phase_seconds_sum_to_compile_seconds(self):
        kernel = kernel_named("motiv-trunk-reorder")
        result = compile_module(kernel.build(), SNSLP_CONFIG, DEFAULT_TARGET)
        assert set(result.phase_seconds) <= set(PIPELINE_PHASES)
        assert {"clone", "simplify", "vectorize", "verify"} <= set(
            result.phase_seconds
        )
        assert result.compile_seconds == sum(result.phase_seconds.values())
        assert all(v >= 0 for v in result.phase_seconds.values())

    def test_unroll_phase_only_when_requested(self):
        kernel = kernel_named("motiv-trunk-reorder")
        plain = compile_module(kernel.build(), SNSLP_CONFIG, DEFAULT_TARGET)
        assert "unroll" not in plain.phase_seconds
        unrolled = compile_module(
            kernel.build(), SNSLP_CONFIG, DEFAULT_TARGET, unroll_factor=2
        )
        assert "unroll" in unrolled.phase_seconds

    def test_tracing_disabled_by_default_during_compile(self):
        TRACER.clear()
        kernel = kernel_named("motiv-trunk-reorder")
        compile_module(kernel.build(), SNSLP_CONFIG, DEFAULT_TARGET)
        assert TRACER.events == []

    def test_trace_covers_phases_when_enabled(self):
        TRACER.clear()
        TRACER.enable()
        try:
            kernel = kernel_named("motiv-trunk-reorder")
            compile_module(kernel.build(), SNSLP_CONFIG, DEFAULT_TARGET)
        finally:
            TRACER.disable()
        names = {e.name for e in TRACER.events}
        assert {"compile", "phase:clone", "phase:vectorize", "slp.graph"} <= names
        compile_span = TRACER.named("compile")[0]
        for phase in TRACER.events:
            if phase.name.startswith("phase:"):
                assert compile_span.contains(phase)
        TRACER.clear()


#: every (kernel, config) pair the paper's figures run
_PROPERTY_CASES = [
    pytest.param(kernel, config, id=f"{kernel.name}-{config.name}")
    for kernel in all_kernels()
    for config in (LSLP_CONFIG, SNSLP_CONFIG)
]


class TestCounterContracts:
    @pytest.mark.parametrize("kernel,config", _PROPERTY_CASES)
    def test_move_counters_match_supernode_records(self, kernel, config):
        """The trunk/leaf-move counters must equal the per-record sums: the
        transactional reorder (rolled-back placements, clone probes) may not
        leak into the global statistics."""
        result = compile_module(kernel.build(), config, DEFAULT_TARGET)
        records = result.report.formed_nodes(vectorized_only=False)
        assert result.counters.get("supernode.trunk-moves-applied", 0) == sum(
            r.trunk_swaps for r in records
        )
        assert result.counters.get("supernode.leaf-moves-applied", 0) == sum(
            r.leaf_swaps for r in records
        )

    def test_motivating_kernels_count_moves(self):
        leaf = compile_module(
            kernel_named("motiv-leaf-reorder").build(), SNSLP_CONFIG, DEFAULT_TARGET
        )
        assert leaf.counters["supernode.leaf-moves-applied"] >= 1
        trunk = compile_module(
            kernel_named("motiv-trunk-reorder").build(), SNSLP_CONFIG, DEFAULT_TARGET
        )
        assert trunk.counters["supernode.trunk-moves-applied"] >= 1

    def test_seed_counters(self):
        result = compile_module(
            kernel_named("motiv-trunk-reorder").build(), SNSLP_CONFIG, DEFAULT_TARGET
        )
        assert result.counters["slp.seed-bundles"] >= 1
        assert result.counters["slp.seed-stores"] >= 2
        assert result.counters["slp.graphs-built"] >= 1

    def test_cost_reject_counter(self):
        result = compile_module(
            kernel_named("motiv-leaf-reorder").build(), LSLP_CONFIG, DEFAULT_TARGET
        )
        assert result.counters["slp.graphs-rejected-cost"] >= 1
        assert result.counters.get("slp.graphs-vectorized", 0) == 0


class TestMissedReasonHistograms:
    def test_partial_gathers_no_longer_dropped(self):
        # milc-su3-cmul under LSLP vectorizes graphs that still contain
        # gathered lanes; the default missed histogram must not count them
        # but the include_vectorized view must
        kernel = kernel_named("milc-su3-cmul")
        result = compile_module(kernel.build(), LSLP_CONFIG, DEFAULT_TARGET)
        partial = result.report.partial_gather_reasons()
        assert partial  # gathers inside vectorized graphs exist
        full = result.report.missed_reasons(include_vectorized=True)
        for reason, count in partial.items():
            assert full[reason] >= count
        strict = result.report.missed_reasons()
        assert sum(full.values()) == sum(strict.values()) + sum(partial.values())

    def test_report_to_remarks(self):
        kernel = kernel_named("milc-su3-cmul")
        result = compile_module(kernel.build(), LSLP_CONFIG, DEFAULT_TARGET)
        remarks = result.report.to_remarks()
        kinds = {r.kind for r in remarks}
        assert "passed" in kinds
        assert "analysis" in kinds  # the partial gathers, as remarks
        analysis = [r for r in remarks if r.kind == "analysis"]
        assert any(r.args.get("in_vectorized_graph") for r in analysis)
        # remarks serialize cleanly
        for remark in remarks:
            assert Remark.from_dict(remark.to_dict()).to_dict() == remark.to_dict()


FIG3 = """
long A[1024]; long B[1024]; long C[1024]; long D[1024];

kernel fig3(n) {
  for (i = 0; i < n; i += 2) {
    A[i+0] = B[i+0] - C[i+0] + D[i+0];
    A[i+1] = B[i+1] + D[i+1] - C[i+1];
  }
}
"""


@pytest.fixture
def fig3_file(tmp_path):
    path = tmp_path / "fig3.sn"
    path.write_text(FIG3)
    return str(path)


class TestCliObservability:
    def test_run_with_all_flags(self, fig3_file, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "t.json"
        remarks = tmp_path / "r.jsonl"
        assert (
            main(
                [
                    "run",
                    fig3_file,
                    "--stats",
                    "--remarks",
                    str(remarks),
                    "--trace-out",
                    str(trace),
                    "-v",
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "Statistics Collected" in err
        assert "supernode.trunk-moves-applied" in err
        assert "slp.seed-bundles" in err
        assert "phase times" in err
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        assert any(e["name"] == "simulate" for e in doc["traceEvents"])
        loaded = load_remarks(str(remarks))
        assert any(r.kind == "passed" for r in loaded)
        # the CLI disarmed nothing globally for later tests
        TRACER.disable()
        TRACER.clear()
        REMARKS.disable()
        REMARKS.clear()

    def test_compare_json(self, fig3_file, capsys):
        from repro.cli import main

        assert main(["compare", fig3_file, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert [c["config"] for c in doc["configs"]] == [
            "O3",
            "SLP",
            "LSLP",
            "SN-SLP",
        ]
        sn = doc["configs"][-1]
        assert sn["correct"] is True
        assert sn["speedup"] > 1.0
        assert sn["counters"]["supernode.trunk-moves-applied"] >= 1
        assert sn["phase_seconds"]["vectorize"] > 0
        assert sn["compile_seconds"] == pytest.approx(
            sum(sn["phase_seconds"].values())
        )

    def test_bench_runner_carries_counters(self):
        from repro.bench import run_kernel_matrix

        runs = run_kernel_matrix(kernel_named("motiv-trunk-reorder"))
        sn = runs["SN-SLP"]
        assert sn.counters["supernode.trunk-moves-applied"] >= 1
        assert sn.counters["sim.instructions"] == sn.instructions
        assert sn.phase_seconds["vectorize"] > 0
        assert sum(sn.phase_seconds.values()) == pytest.approx(
            sn.compile_seconds
        )
