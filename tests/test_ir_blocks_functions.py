"""Tests for basic blocks, functions, modules and the IR builder."""

import pytest

from repro.ir import (
    F64,
    I64,
    VOID,
    CmpPredicate,
    Constant,
    Function,
    IRBuilder,
    Module,
    Opcode,
)


def _block_with_builder():
    function = Function("f", [("a", I64), ("b", I64)], VOID)
    block = function.add_block("entry")
    return function, block, IRBuilder(block)


class TestBasicBlock:
    def test_append_sets_parent(self):
        _, block, builder = _block_with_builder()
        inst = builder.add(Constant(I64, 1), Constant(I64, 2))
        assert inst.parent is block
        assert len(block) == 1

    def test_double_insertion_rejected(self):
        function, block, builder = _block_with_builder()
        inst = builder.add(Constant(I64, 1), Constant(I64, 2))
        other = function.add_block("other")
        with pytest.raises(ValueError):
            other.append(inst)

    def test_insert_before_and_order_queries(self):
        _, block, builder = _block_with_builder()
        first = builder.add(Constant(I64, 1), Constant(I64, 2))
        third = builder.add(first, first)
        builder.position_before(third)
        second = builder.mul(first, first)
        assert block.index_of(first) == 0
        assert block.index_of(second) == 1
        assert block.index_of(third) == 2
        assert block.comes_before(first, third)
        assert not block.comes_before(third, second)

    def test_remove_and_erase(self):
        _, block, builder = _block_with_builder()
        a = builder.add(Constant(I64, 1), Constant(I64, 2))
        b = builder.add(a, a)
        b.erase_from_parent()
        assert len(block) == 1
        assert a.num_uses == 0
        assert b.parent is None

    def test_move_before(self):
        _, block, builder = _block_with_builder()
        a = builder.add(Constant(I64, 1), Constant(I64, 2))
        b = builder.mul(Constant(I64, 3), Constant(I64, 4))
        b.move_before(a)
        assert block.index_of(b) == 0

    def test_terminator_detection(self):
        _, block, builder = _block_with_builder()
        assert block.terminator is None
        builder.ret()
        assert block.terminator is not None

    def test_phis_listed_first(self):
        function, _, _ = _block_with_builder()
        block = function.add_block("loop")
        builder = IRBuilder(block)
        phi = builder.phi(I64)
        builder.add(phi, phi)
        assert block.phis() == [phi]
        assert len(block.non_phi_instructions()) == 1


class TestFunction:
    def test_unique_names(self):
        function = Function("f")
        assert function.unique_name("t") == "t"
        assert function.unique_name("t") == "t.1"
        assert function.unique_name("x") == "x"

    def test_assign_names(self):
        function, _, builder = _block_with_builder()
        inst = builder.add(Constant(I64, 1), Constant(I64, 2))
        function.assign_names()
        assert inst.name

    def test_entry_requires_blocks(self):
        with pytest.raises(ValueError):
            Function("f").entry

    def test_block_lookup(self):
        function = Function("f")
        block = function.add_block("start")
        assert function.block_named("start") is block
        with pytest.raises(KeyError):
            function.block_named("missing")

    def test_argument_lookup(self):
        function = Function("f", [("n", I64)])
        assert function.argument_named("n").type is I64
        with pytest.raises(KeyError):
            function.argument_named("m")

    def test_instruction_count(self):
        function, _, builder = _block_with_builder()
        builder.add(Constant(I64, 1), Constant(I64, 2))
        builder.ret()
        assert function.instruction_count() == 2


class TestModule:
    def test_function_registry(self):
        module = Module("m")
        function = Function("f")
        module.add_function(function)
        assert module.function("f") is function
        with pytest.raises(ValueError):
            module.add_function(Function("f"))
        with pytest.raises(KeyError):
            module.function("g")

    def test_global_registry(self):
        module = Module("m")
        g = module.add_global("A", F64, 8)
        assert module.global_named("A") is g
        with pytest.raises(ValueError):
            module.add_global("A", F64, 8)
        with pytest.raises(KeyError):
            module.global_named("B")


class TestBuilder:
    def test_gep_accepts_python_int(self):
        module = Module("m")
        g = module.add_global("A", F64, 8)
        _, _, builder = _block_with_builder()
        gep = builder.gep(g, 3)
        assert isinstance(gep.index, Constant)
        assert gep.index.value == 3

    def test_insert_extract_accept_python_int_lane(self):
        _, _, builder = _block_with_builder()
        from repro.ir import vector_of

        vec = Constant(vector_of(F64, 2), (1.0, 2.0))
        ins = builder.insertelement(vec, Constant(F64, 3.0), 1)
        ext = builder.extractelement(ins, 0)
        assert ext.type is F64

    def test_no_insertion_point_raises(self):
        builder = IRBuilder()
        with pytest.raises(ValueError):
            builder.ret()

    def test_every_binop_helper(self):
        _, _, builder = _block_with_builder()
        i1, i2 = Constant(I64, 6), Constant(I64, 3)
        f1, f2 = Constant(F64, 6.0), Constant(F64, 3.0)
        assert builder.add(i1, i2).opcode is Opcode.ADD
        assert builder.sub(i1, i2).opcode is Opcode.SUB
        assert builder.mul(i1, i2).opcode is Opcode.MUL
        assert builder.sdiv(i1, i2).opcode is Opcode.SDIV
        assert builder.fadd(f1, f2).opcode is Opcode.FADD
        assert builder.fsub(f1, f2).opcode is Opcode.FSUB
        assert builder.fmul(f1, f2).opcode is Opcode.FMUL
        assert builder.fdiv(f1, f2).opcode is Opcode.FDIV
        assert builder.and_(i1, i2).opcode is Opcode.AND
        assert builder.or_(i1, i2).opcode is Opcode.OR
        assert builder.xor(i1, i2).opcode is Opcode.XOR
        assert builder.shl(i1, i2).opcode is Opcode.SHL
        assert builder.ashr(i1, i2).opcode is Opcode.ASHR

    def test_cmp_and_select(self):
        _, _, builder = _block_with_builder()
        c = builder.icmp(CmpPredicate.LT, Constant(I64, 1), Constant(I64, 2))
        s = builder.select(c, Constant(I64, 1), Constant(I64, 2))
        assert s.type is I64
