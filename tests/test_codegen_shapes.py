"""Per-shape codegen coverage: casts, depth limits, dedup interplay."""

import random

import pytest

from repro.interp import Interpreter
from repro.ir import (
    F64,
    I32,
    I64,
    VOID,
    Constant,
    Function,
    IRBuilder,
    Module,
    Opcode,
    verify_module,
    vector_of,
)
from repro.machine import DEFAULT_TARGET
from repro.vectorizer import O3_CONFIG, SLP_CONFIG, SNSLP_CONFIG, compile_module


def _run(module, name, inputs, n=0):
    interp = Interpreter(module)
    for key, values in inputs.items():
        interp.write_global(key, values)
    interp.run(name, [n])
    return {key: interp.read_global(key) for key in module.globals}


class TestCastBundles:
    def _module(self):
        # A[f64][i+k] = sitofp(B[i64][i+k]) * C[f64][i+k]
        module = Module("cast")
        module.add_global("A", F64, 64)
        module.add_global("B", I64, 64)
        module.add_global("C", F64, 64)
        function = Function("kernel", [("i", I64)], VOID, fast_math=True)
        module.add_function(function)
        b = IRBuilder(function.add_block("entry"))
        i = function.arguments[0]
        for k in range(4):
            idx = b.add(i, b.const_i64(k)) if k else i
            raw = b.load(b.gep(module.global_named("B"), idx))
            as_float = b.sitofp(raw, F64)
            scaled = b.fmul(as_float, b.load(b.gep(module.global_named("C"), idx)))
            b.store(scaled, b.gep(module.global_named("A"), idx))
        b.ret()
        verify_module(module)
        return module

    def test_sitofp_bundle_vectorizes(self):
        module = self._module()
        compiled = compile_module(module, SLP_CONFIG, DEFAULT_TARGET)
        assert compiled.report.vectorized_graphs()
        function = compiled.module.function("kernel")
        casts = [i for i in function.entry if i.opcode is Opcode.SITOFP]
        assert len(casts) == 1
        assert casts[0].type is vector_of(F64, 4)

    def test_cast_bundle_correct(self):
        rng = random.Random(8)
        inputs = {
            "B": [rng.randint(-50, 50) for _ in range(64)],
            "C": [rng.uniform(-2, 2) for _ in range(64)],
        }
        expected = _run(
            compile_module(self._module(), O3_CONFIG, DEFAULT_TARGET).module,
            "kernel", inputs,
        )
        got = _run(
            compile_module(self._module(), SLP_CONFIG, DEFAULT_TARGET).module,
            "kernel", inputs,
        )
        assert got["A"] == expected["A"]

    def test_mixed_cast_source_types_gather(self):
        # lanes casting from different source types must not bundle
        module = Module("mix")
        module.add_global("A", F64, 64)
        module.add_global("B", I64, 64)
        module.add_global("C8", I32, 64)
        function = Function("kernel", [("i", I64)], VOID, fast_math=True)
        module.add_function(function)
        b = IRBuilder(function.add_block("entry"))
        i = function.arguments[0]
        idx1 = b.add(i, b.const_i64(1))
        wide = b.load(b.gep(module.global_named("B"), i))
        narrow = b.load(b.gep(module.global_named("C8"), idx1))
        v0 = b.sitofp(wide, F64)
        v1 = b.sitofp(narrow, F64)
        b.store(v0, b.gep(module.global_named("A"), i))
        b.store(v1, b.gep(module.global_named("A"), idx1))
        b.ret()
        verify_module(module)
        compiled = compile_module(module, SLP_CONFIG, DEFAULT_TARGET)
        graphs = compiled.report.all_graphs()
        assert graphs and not graphs[0].vectorized


class TestDepthLimit:
    def test_max_depth_gathers_gracefully(self):
        import dataclasses

        module = Module("deep")
        module.add_global("A", F64, 64)
        module.add_global("B", F64, 64)
        function = Function("kernel", [("i", I64)], VOID, fast_math=True)
        module.add_function(function)
        b = IRBuilder(function.add_block("entry"))
        i = function.arguments[0]
        for lane in range(2):
            idx = b.add(i, b.const_i64(lane)) if lane else i
            value = b.load(b.gep(module.global_named("B"), idx))
            for _ in range(6):
                value = b.fmul(value, value)  # deep non-chain tree
            b.store(value, b.gep(module.global_named("A"), idx))
        b.ret()
        verify_module(module)
        shallow = dataclasses.replace(SNSLP_CONFIG, name="shallow", max_depth=3)
        compiled = compile_module(module, shallow, DEFAULT_TARGET)
        graphs = compiled.report.all_graphs()
        assert graphs
        assert any("max depth" in r for g in graphs for r in g.gather_reasons) or (
            graphs[0].vectorized
        )


class TestDedupAfterSuperNode:
    def test_shared_leaf_between_chains_stays_correct(self):
        # both lanes' chains share the exact same load (splat-ish leaf)
        module = Module("share")
        for name in "ABC":
            module.add_global(name, F64, 64)
        function = Function("kernel", [("i", I64)], VOID, fast_math=True)
        module.add_function(function)
        b = IRBuilder(function.add_block("entry"))
        i = function.arguments[0]
        shared = b.load(b.gep(module.global_named("C"), 0))
        for lane in range(2):
            idx = b.add(i, b.const_i64(lane)) if lane else i
            x = b.load(b.gep(module.global_named("B"), idx))
            value = b.fadd(b.fsub(x, shared), Constant(F64, 1.0))
            b.store(value, b.gep(module.global_named("A"), idx))
        b.ret()
        verify_module(module)
        rng = random.Random(4)
        inputs = {
            "B": [rng.uniform(-2, 2) for _ in range(64)],
            "C": [rng.uniform(-2, 2) for _ in range(64)],
        }
        expected = _run(
            compile_module(module, O3_CONFIG, DEFAULT_TARGET).module,
            "kernel", inputs,
        )
        for config in (SLP_CONFIG, SNSLP_CONFIG):
            got = _run(
                compile_module(module, config, DEFAULT_TARGET).module,
                "kernel", inputs,
            )
            import math

            for x, y in zip(got["A"], expected["A"]):
                assert math.isclose(x, y, rel_tol=1e-12)
