"""Compilation pipeline tests: cloning, isolation, flags, reports."""

import pytest

from repro.ir import Opcode, print_module, verify_module
from repro.kernels import kernel_named
from repro.machine import DEFAULT_TARGET
from repro.vectorizer import (
    LSLP_CONFIG,
    O3_CONFIG,
    SNSLP_CONFIG,
    clone_module,
    compile_module,
)


class TestCloneModule:
    def test_clone_is_structurally_identical(self):
        module = kernel_named("motiv-trunk-reorder").build()
        clone = clone_module(module)
        assert print_module(clone) == print_module(module)
        assert clone is not module

    def test_clone_shares_no_objects(self):
        module = kernel_named("motiv-trunk-reorder").build()
        clone = clone_module(module)
        original_ids = {id(inst) for inst in module.function("kernel").instructions()}
        clone_ids = {id(inst) for inst in clone.function("kernel").instructions()}
        assert original_ids.isdisjoint(clone_ids)

    def test_text_round_trip_clone_agrees_with_structural(self):
        # via_text exercises the printer and parser against each other;
        # the structural clone must produce the same module
        module = kernel_named("motiv-trunk-reorder").build()
        via_text = clone_module(module, via_text=True)
        verify_module(via_text)
        assert print_module(via_text) == print_module(module)
        assert print_module(via_text) == print_module(clone_module(module))


class TestCompileModule:
    def test_input_module_never_mutated(self):
        module = kernel_named("motiv-trunk-reorder").build()
        before = print_module(module)
        compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        assert print_module(module) == before

    def test_compile_seconds_positive(self):
        module = kernel_named("motiv-trunk-reorder").build()
        result = compile_module(module, O3_CONFIG, DEFAULT_TARGET)
        assert result.compile_seconds > 0

    def test_result_module_verifies(self):
        module = kernel_named("milc-su3-cmul").build()
        result = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET, verify=False)
        verify_module(result.module)

    def test_simplify_always_runs(self):
        # the frontend's `i+0` index math must be gone even under O3
        from repro.frontend import compile_source

        module = compile_source(
            "long A[16]; long B[16];\nkernel k(n) { A[0+0] = B[1-1]; }"
        )
        result = compile_module(module, O3_CONFIG, DEFAULT_TARGET)
        entry = result.module.function("k").entry
        adds = [i for i in entry if i.opcode in (Opcode.ADD, Opcode.SUB)]
        assert adds == []

    def test_unroll_factor_zero_is_default(self):
        module = kernel_named("motiv-trunk-reorder").build()
        a = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        b = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET, unroll_factor=0)
        assert print_module(a.module) == print_module(b.module)

    def test_report_summary_text(self):
        module = kernel_named("motiv-trunk-reorder").build()
        result = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        summary = result.report.summary()
        assert "config: SN-SLP" in summary
        assert "graphs vectorized: 1" in summary
        assert "average node size" in summary

    def test_same_input_same_output(self):
        module = kernel_named("dealii-cell-assembly").build()
        a = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        b = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        assert print_module(a.module) == print_module(b.module)

    def test_graph_kind_field(self):
        module = kernel_named("milc-staple-reduce").build()
        result = compile_module(module, SNSLP_CONFIG, DEFAULT_TARGET)
        kinds = {g.kind for g in result.report.all_graphs()}
        assert "reduction" in kinds


class TestGraphDump:
    def test_shared_nodes_printed_once_per_visit_guard(self):
        # the clamp shape shares load nodes between cmp and select; the
        # dump must terminate and mention each node kind
        from conftest import build_simple_store_module
        from repro.vectorizer import collect_store_seeds, SLPVectorizer, SLP_CONFIG
        from repro.vectorizer.slp import _GraphBuilder

        module = build_simple_store_module(2)
        function = module.function("kernel")
        vectorizer = SLPVectorizer(DEFAULT_TARGET, SLP_CONFIG)
        seeds = collect_store_seeds(function.entry, DEFAULT_TARGET.isa)
        graph = _GraphBuilder(vectorizer, seeds[0], function).build()
        text = graph.dump()
        assert text.count("store") >= 1
        assert "cost" in text
