"""Tests for distributed tracing + live introspection (PR 10).

Covers the request-scoped :class:`~repro.observe.context.TraceContext`
plumbing: spans minted client-side, carried over the pool pipe into
workers, and reassembled into one causally-linked tree per request —
correct across crash → respawn + requeue (same trace id, incremented
attempt), hedged duplicates (shared trace, loser-cancel recorded), and
the degradation ladder (serial rung parents into the originating
request).  Plus the structured event log, the ``(pid, generation)``
Chrome-trace tracks, the ``stats``/slow-log introspection surface, the
``repro_build_info`` exposition gauge, and the tracing-off bit-identity
contract.
"""

import json

import pytest

from repro.bench.parallel import _run_pair, run_suite_parallel
from repro.bench.runner import DEFAULT_SEED
from repro.kernels import kernel_named
from repro.observe import (
    EventLog,
    TraceContext,
    current_trace_context,
    load_chrome_trace,
    load_event_log,
    mint_context,
    use_trace_context,
    validate_span_tree,
)
from repro.observe.metrics import MetricsRegistry
from repro.observe.session import CompilerSession, use_session
from repro.observe.trace import TraceEvent, Tracer
from repro.serve.resilience import ResiliencePolicy, ResilientExecutor
from repro.serve.service import CompileService

MOTIVATING = ("motiv-leaf-reorder", "motiv-trunk-reorder")

#: a cold bench pair: (kernel, config, target, seed, trace, remarks,
#: journal, metrics) — the same PairPayload the bench driver ships
PAIR = ("motiv-leaf-reorder", "SN-SLP", "skylake-like", DEFAULT_SEED,
        False, False, False, False)


def traced_session(name: str = "t-tracing") -> CompilerSession:
    session = CompilerSession(name=name)
    session.tracer.enable()
    return session


def spans_named(session: CompilerSession, name: str):
    return [event for event in session.tracer.events if event.name == name]


class TestTraceContext:
    def test_wire_and_doc_round_trips(self):
        context = TraceContext(trace_id="a" * 16, span_id="b" * 12, attempt=3)
        assert TraceContext.from_wire(context.to_wire()) == context
        assert TraceContext.from_doc(context.to_doc()) == context
        assert context.traceparent().startswith("00-")

    def test_from_doc_rejects_garbage(self):
        assert TraceContext.from_doc(None) is None
        assert TraceContext.from_doc("nope") is None
        assert TraceContext.from_doc({}) is None
        assert TraceContext.from_doc({"span_id": "x"}) is None

    def test_child_keeps_trace_retry_keeps_span(self):
        root = mint_context()
        child = root.child("c" * 12)
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id
        retried = root.retry()
        assert retried.trace_id == root.trace_id
        assert retried.span_id == root.span_id
        assert retried.attempt == root.attempt + 1

    def test_ambient_context_is_scoped(self):
        assert current_trace_context() is None
        context = mint_context()
        with use_trace_context(context):
            assert current_trace_context() == context
        assert current_trace_context() is None

    def test_minted_ids_are_distinct(self):
        contexts = [mint_context() for _ in range(32)]
        assert len({c.trace_id for c in contexts}) == 32
        assert len({c.span_id for c in contexts}) == 32


class TestEventLog:
    def test_disabled_log_records_nothing(self):
        log = EventLog()
        log.emit("error", "boom", "should be dropped")
        assert log.events == []

    def test_threshold_filters_below_level(self):
        log = EventLog(enabled=True, level="warn")
        log.emit("debug", "noise", "no")
        log.emit("info", "noise", "no")
        log.emit("warn", "kept", "yes")
        log.emit("error", "kept", "yes")
        assert [event.level for event in log.events] == ["warn", "error"]

    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog(enabled=True, level="debug")
        context = mint_context()
        log.emit("info", "greet", "hello", trace_id=context.trace_id, n=1)
        log.emit("warn", "trouble", "uh oh", rung="serial")
        path = str(tmp_path / "events.jsonl")
        log.write_jsonl(path)
        loaded = load_event_log(path)
        assert [event.event for event in loaded] == ["greet", "trouble"]
        assert loaded[0].trace_id == context.trace_id
        assert loaded[0].args == {"n": 1}
        # every line is a self-contained JSON object
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                assert json.loads(line)["event"] in ("greet", "trouble")

    def test_trace_correlation(self):
        log = EventLog(enabled=True)
        a, b = mint_context(), mint_context()
        log.emit("info", "one", "for a", trace_id=a.trace_id)
        log.emit("info", "two", "for b", trace_id=b.trace_id)
        assert [e.event for e in log.for_trace(a.trace_id)] == ["one"]


class TestChromeTraceTracks:
    def test_tracks_key_on_pid_and_generation(self, tmp_path):
        tracer = Tracer(enabled=True)
        for generation in (0, 2):
            tracer.events.append(
                TraceEvent(
                    name="compile", start_ns=0, duration_ns=1000, depth=0,
                    pid=5, generation=generation,
                    trace_id="t" * 16, span_id=f"s{generation}" * 6,
                )
            )
        doc = tracer.to_chrome_trace()
        tracks = {
            (int(event["args"]["worker_pid"]),
             int(event["args"]["worker_generation"])): event["pid"]
            for event in doc["traceEvents"]
            if event.get("ph") == "X"
        }
        # the OS reuses pids across respawns: same pid, different
        # generation must land on different tracks
        assert tracks[(5, 0)] != tracks[(5, 2)]
        names = {
            event["args"]["name"]
            for event in doc["traceEvents"]
            if event.get("name") == "process_name"
        }
        assert "worker pid 5 gen 2" in names

    def test_write_load_round_trip_preserves_linkage(self, tmp_path):
        tracer = Tracer(enabled=True)
        tracer.events.append(
            TraceEvent(
                name="worker:task", start_ns=1000, duration_ns=5000,
                depth=0, pid=7, generation=1, trace_id="a" * 16,
                span_id="b" * 12, parent_id="c" * 12,
            )
        )
        path = str(tmp_path / "trace.json")
        tracer.write_chrome_trace(path)
        loaded = load_chrome_trace(path)
        assert len(loaded) == 1
        event = loaded[0]
        assert (event.pid, event.generation) == (7, 1)
        assert (event.trace_id, event.span_id, event.parent_id) == (
            "a" * 16, "b" * 12, "c" * 12
        )


class TestBuildInfo:
    def test_exposition_carries_build_info_gauge(self):
        registry = MetricsRegistry(enabled=True)
        text = registry.render_exposition()
        line = next(
            line for line in text.splitlines()
            if line.startswith("repro_build_info{")
        )
        assert 'engine="' in line
        assert 'fingerprint="' in line
        assert 'format="' in line
        assert line.endswith("} 1")


class TestServiceTracing:
    def test_request_spans_link_client_to_worker(self):
        session = traced_session()
        with CompileService(workers=1, session=session, name="t-span") as svc:
            svc.submit("ping").result(timeout=30)
        events = session.tracer.events
        assert validate_span_tree(events) == []
        (root,) = spans_named(session, "serve:request")
        (queue,) = spans_named(session, "serve:queue")
        (task,) = spans_named(session, "worker:task")
        assert root.trace_id and root.parent_id == ""
        assert queue.trace_id == root.trace_id
        assert queue.parent_id == root.span_id
        assert task.trace_id == root.trace_id
        assert task.parent_id == root.span_id
        assert task.pid != 0 and root.pid == 0
        assert root.args["status"] == "ok"

    def test_crash_requeue_keeps_trace_and_increments_attempt(self, tmp_path):
        """The acceptance path: a worker dies mid-request, the respawned
        worker reruns it under the *same* trace id with attempt+1."""
        marker = str(tmp_path / "crash-once.json")
        session = traced_session()
        with CompileService(
            workers=1, retries=1, session=session, name="t-crashtrace"
        ) as svc:
            future = svc.submit(
                "crash-once",
                {"marker": marker, "kind": "ping", "payload": None},
            )
            assert future.result(timeout=60)["pid"] > 0
        events = session.tracer.events
        assert validate_span_tree(events) == []
        (root,) = spans_named(session, "serve:request")
        assert root.args["attempts"] == 2
        (task,) = spans_named(session, "worker:task")
        # the first attempt's spans died with the worker; the surviving
        # span is the requeue, in the respawned (generation 1) process
        assert task.trace_id == root.trace_id
        assert task.args["attempt"] == 1
        assert task.generation == 1
        assert session.stats.value("serve.requeued") >= 1

    def test_tracing_off_is_bit_identical_and_span_free(self):
        expected, _ = _run_pair(PAIR)
        quiet = CompilerSession(name="t-quiet")
        with CompileService(workers=1, session=quiet, name="t-off") as svc:
            run, _capture = svc.submit(
                "bench-pair", (PAIR, False)
            ).result(timeout=60)
        assert quiet.tracer.events == []
        assert run.cycles == expected.cycles
        assert run.counters == expected.counters
        assert run.outputs == expected.outputs


class TestResilienceTracing:
    def test_hedge_shares_trace_and_records_loser(self):
        session = traced_session()
        policy = ResiliencePolicy(
            max_retries=0, hedge_after_seconds=0.05, local_pool_workers=0
        )
        with CompileService(workers=2, session=session, name="t-hedge") as svc:
            # occupy the shard-pinned worker so the original request
            # queues behind it and the hedge (unpinned) wins the race
            blocker = svc.submit("sleep", 1.0, shard_key="pin")
            with ResilientExecutor(svc, policy=policy, session=session) as ex:
                results = ex.run_batch([("sleep", 0.01, "pin", 1.0)])
            blocker.result(timeout=30)
        assert results == [0.01]
        assert session.stats.value("serve.hedges") >= 1
        (client,) = spans_named(session, "client:request")
        requests = [
            span for span in spans_named(session, "serve:request")
            if span.trace_id == client.trace_id  # the blocker has its own
        ]
        assert len(requests) == 2  # original + hedge, one shared trace
        assert all(span.parent_id == client.span_id for span in requests)
        (loser,) = spans_named(session, "serve:hedge-loser-cancelled")
        assert loser.trace_id == client.trace_id
        assert loser.parent_id == client.span_id
        assert loser.duration_ns == 0
        assert validate_span_tree(session.tracer.events) == []

    def test_degrade_to_serial_parents_into_request(self):
        expected, _ = _run_pair(PAIR)
        session = traced_session()
        policy = ResiliencePolicy(local_pool_workers=0)
        with ResilientExecutor(None, policy=policy, session=session) as ex:
            results = ex.run_batch([("bench-pair", (PAIR, False), None, 1.0)])
        run, _capture = results[0]
        assert run.cycles == expected.cycles
        assert run.outputs == expected.outputs
        assert session.stats.value("serve.degraded") == 1
        (client,) = spans_named(session, "client:request")
        (serial,) = spans_named(session, "serial:task")
        assert serial.trace_id == client.trace_id
        assert serial.parent_id == client.span_id
        assert client.args["status"] == "degraded"
        assert serial.args["kind"] == "bench-pair"
        assert validate_span_tree(session.tracer.events) == []

    def test_retry_shares_trace_with_incremented_attempt(self):
        session = traced_session()
        policy = ResiliencePolicy(
            backoff_base_seconds=0.001, backoff_max_seconds=0.01,
            local_pool_workers=0,
        )
        with CompileService(
            workers=1, session=session, name="t-retrytrace",
            fault_plans=[("serve.task.error", "raise", 0, True)],
        ) as svc:
            with ResilientExecutor(svc, policy=policy, session=session) as ex:
                results = ex.run_batch([("ping", None, None, 1.0)])
        assert results[0]["pid"] > 0
        assert session.stats.value("serve.retries") >= 1
        (client,) = spans_named(session, "client:request")
        requests = spans_named(session, "serve:request")
        assert len(requests) == 2  # failed attempt + retry, one trace
        assert {span.trace_id for span in requests} == {client.trace_id}
        statuses = [span.args["status"] for span in requests]
        assert "ok" in statuses and any(s != "ok" for s in statuses)
        # the faulted attempt died before its worker span opened; the
        # surviving worker span carries the client's retry attempt number
        (task,) = spans_named(session, "worker:task")
        assert task.trace_id == client.trace_id
        assert task.args["attempt"] == 1
        assert validate_span_tree(session.tracer.events) == []


class TestServiceBenchTracing:
    def test_full_service_bench_has_zero_orphan_spans(self):
        """Acceptance: a traced ``bench --service`` run yields one
        causally-linked span tree per request and no orphan worker
        spans — and the results stay bit-identical to serial."""
        kernels = [kernel_named(name) for name in MOTIVATING]
        serial = run_suite_parallel(kernels, jobs=1)
        session = traced_session(name="t-bench-trace")
        with use_session(session):
            with CompileService(
                workers=2, session=session, name="t-trace-bench"
            ) as svc:
                traced = run_suite_parallel(kernels, jobs=2, service=svc)
        events = session.tracer.events
        assert validate_span_tree(events) == []
        roots = spans_named(session, "serve:request")
        worker_spans = [event for event in events if event.pid != 0]
        assert roots and worker_spans
        assert {event.trace_id for event in worker_spans} <= {
            root.trace_id for root in roots
        }
        for kernel_name, matrix in serial.items():
            for config_name, expected in matrix.items():
                run = traced[kernel_name][config_name]
                assert run.cycles == expected.cycles, (kernel_name, config_name)
                assert run.outputs == expected.outputs


class TestIntrospection:
    def test_describe_reports_latency_and_cache_fields(self):
        session = CompilerSession(name="t-describe")
        with CompileService(workers=2, session=session, name="t-desc") as svc:
            for _ in range(3):
                svc.submit("ping").result(timeout=30)
            doc = svc.describe()
        assert doc["breaker"] == ""
        assert 0.0 <= doc["cache_hit_rate"] <= 1.0
        assert doc["turnaround_seconds"]["p99"] > 0.0
        assert doc["queue_seconds"]["p50"] <= doc["queue_seconds"]["p99"]
        for worker in doc["workers"]:
            assert worker["inflight"] == 0
            assert "generation" in worker

    def test_slow_log_records_structured_breakdown(self):
        session = CompilerSession(name="t-slowlog")
        with CompileService(
            workers=1, session=session, name="t-slow", slow_log_seconds=0.0
        ) as svc:
            svc.submit("ping").result(timeout=30)
            records = list(svc.slow_records)
        assert records
        record = records[0]
        assert record["kind"] == "ping"
        assert record["status"] == "ok"
        assert record["turnaround_seconds"] >= record["queue_seconds"]
        for key in ("marshal_seconds", "worker_seconds", "payload_bytes"):
            assert key in record

    def test_slow_log_off_by_default(self):
        session = CompilerSession(name="t-noslow")
        with CompileService(workers=1, session=session, name="t-ns") as svc:
            svc.submit("ping").result(timeout=30)
            assert list(svc.slow_records) == []
