"""Setup shim for environments without PEP 517 build isolation.

`pip install -e . --no-build-isolation` uses pyproject.toml directly;
this shim lets `python setup.py develop` work offline and registers the
`snslp` console script explicitly (older setuptools versions do not pick
it up from pyproject metadata during develop installs).
"""

from setuptools import setup

setup(
    entry_points={"console_scripts": ["snslp = repro.cli:main"]},
)
