#!/usr/bin/env bash
# Smoke check: tier-1 tests, one fully-observed benchmark run, and the
# Figure 5 speedup regression gate.  Run from the repository root:
#
#     bash scripts/smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== traced benchmark run (Fig 3 motivating kernel) =="
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
cat > "$workdir/fig3.sn" <<'EOF'
long A[1024]; long B[1024]; long C[1024]; long D[1024];

kernel fig3(n) {
  for (i = 0; i < n; i += 2) {
    A[i+0] = B[i+0] - C[i+0] + D[i+0];
    A[i+1] = B[i+1] + D[i+1] - C[i+1];
  }
}
EOF
python -m repro run "$workdir/fig3.sn" --n 512 \
    --stats \
    --remarks "$workdir/remarks.jsonl" \
    --trace-out "$workdir/trace.json" \
    -v

python - "$workdir" <<'EOF'
import json, pathlib, sys
workdir = pathlib.Path(sys.argv[1])
trace = json.loads((workdir / "trace.json").read_text())
assert trace["traceEvents"], "trace is empty"
remarks = [
    json.loads(line)
    for line in (workdir / "remarks.jsonl").read_text().splitlines()
    if line
]
assert any(r["kind"] == "passed" for r in remarks), "no passed remark"
print(
    f"trace: {len(trace['traceEvents'])} events; "
    f"remarks: {len(remarks)} recorded — artifacts look sane"
)
EOF

echo
echo "== Figure 5 speedup regression gate =="
python benchmarks/check_regression.py
